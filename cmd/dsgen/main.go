// Command dsgen generates key traces in the repository's binary trace
// format: synthetic Zipf streams or the CAIDA-like IP/port data sets used
// by the evaluation (DESIGN.md §5).
//
// Usage:
//
//	dsgen -kind zipf -skew 1.5 -universe 1000000 -n 5000000 -out trace.dsk
//	dsgen -kind ips   -n 22000000 -out ips.dsk
//	dsgen -kind ports -n 22000000 -out ports.dsk
package main

import (
	"flag"
	"fmt"
	"os"

	"dsketch/internal/trace"
	"dsketch/internal/zipf"
)

func main() {
	var (
		kind     = flag.String("kind", "zipf", "trace kind: zipf | ips | ports")
		n        = flag.Int("n", 1_000_000, "number of keys")
		universe = flag.Int("universe", 1_000_000, "distinct keys (zipf only)")
		skew     = flag.Float64("skew", 1.0, "Zipf skew parameter (zipf only)")
		seed     = flag.Uint64("seed", 1, "generator seed")
		out      = flag.String("out", "", "output file (required)")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "dsgen: -out is required")
		os.Exit(2)
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsgen: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()

	w, err := trace.NewWriter(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsgen: %v\n", err)
		os.Exit(1)
	}

	write := func(keys []uint64) {
		for _, k := range keys {
			if err := w.WriteKey(k); err != nil {
				fmt.Fprintf(os.Stderr, "dsgen: %v\n", err)
				os.Exit(1)
			}
		}
	}

	switch *kind {
	case "zipf":
		g := zipf.New(zipf.Config{Universe: *universe, Skew: *skew, Seed: *seed, PermuteKeys: true})
		for i := 0; i < *n; i++ {
			if err := w.WriteKey(g.Next()); err != nil {
				fmt.Fprintf(os.Stderr, "dsgen: %v\n", err)
				os.Exit(1)
			}
		}
	case "ips":
		write(trace.SyntheticIPs(*n, *seed))
	case "ports":
		write(trace.SyntheticPorts(*n, *seed))
	default:
		fmt.Fprintf(os.Stderr, "dsgen: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	if err := w.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "dsgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d keys to %s\n", w.Count(), *out)
}
