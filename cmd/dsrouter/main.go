// Command dsrouter serves a multi-node delegation-sketch cluster: it
// shards keys across N dsserve backends with a consistent-hash ring
// (the paper's Owner(K) = hash(K) mod T rule lifted from threads to
// processes), batch-forwards inserts to each key's owner, and fans out
// /query and /topk with an exact merge — the Count-Min-family sketches
// are mergeable and the per-node key domains are disjoint.
//
// Robustness is the headline:
//
//   - an active health checker probes every backend's /healthz on a
//     jittered interval; -failk consecutive failures eject a node,
//     -readym consecutive successes readmit it;
//   - every forwarded request gets a deadline (-reqtimeout) and bounded
//     retries (-retries) with exponential backoff + jitter, paid from a
//     router-wide retry budget (-retry-budget) so a dying backend
//     cannot multiply load; reads retry freely, inserts retry only
//     when the backend provably applied nothing;
//   - when an owner is down, queries degrade to partial answers with
//     X-Degraded-Shards / X-Degraded-Keys headers instead of failing
//     closed, and inserts for the dead owner are parked in a bounded
//     buffer (-buffer, -buffer-policy block|shed) and replayed after
//     readmission — or refused with 503 + Retry-After.
//
// Endpoints mirror dsserve: POST /insert, POST /insertbatch,
// GET /query, GET /topk, GET /stats, GET /healthz (JSON membership).
//
// Live membership (admin plane): POST /admin/join?node=URL and
// POST /admin/leave?node=URL change the member set while the cluster
// serves traffic, driving the three-phase rebalance (fence + checkpoint
// handoff + staged cutover — see internal/router) against the backends'
// transfer endpoints; GET /admin/members reports the serving member
// list and any rebalance in flight. The handoff is tuned with
// -pair-timeout (per moved-pair deadline), -move-attempts (restarts per
// pair before the move is abandoned) and -pull-chunk (checkpoint pull
// chunk size). A joining or restarted backend needs -checkpoint-dir on
// the dsserve side for the checkpoint lanes to exist.
//
// Usage:
//
//	dsrouter -addr :8080 -nodes localhost:8081,localhost:8082,localhost:8083
//	curl -X POST 'localhost:8080/insert?key=10.0.0.1'
//	curl 'localhost:8080/topk?k=5'
//	curl -X POST 'localhost:8080/admin/join?node=localhost:8084'
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dsketch/internal/router"
)

func main() {
	var (
		addr  = flag.String("addr", ":8080", "listen address")
		nodes = flag.String("nodes", "", "comma-separated backend base URLs (required)")

		replicas = flag.Int("replicas", 64, "virtual nodes per backend on the hash ring")

		probeInterval = flag.Duration("probe-interval", time.Second, "health probe period (jittered)")
		probeJitter   = flag.Duration("probe-jitter", 0, "probe jitter half-width (0 = interval/4)")
		probeTimeout  = flag.Duration("probe-timeout", 0, "per-probe deadline (0 = interval, capped at 2s)")
		failK         = flag.Int("failk", 3, "consecutive probe failures that eject a backend")
		readyM        = flag.Int("readym", 2, "consecutive probe successes that readmit a backend")

		reqTimeout = flag.Duration("reqtimeout", 2*time.Second, "per-forwarded-attempt deadline")
		retries    = flag.Int("retries", 2, "max retries per forwarded request")
		retryBase  = flag.Duration("retry-base", 10*time.Millisecond, "backoff base (exponential, full jitter)")
		retryCap   = flag.Duration("retry-cap", 500*time.Millisecond, "backoff cap")
		budget     = flag.Float64("retry-budget", 0.1, "retry tokens earned per forwarded request")

		bufferCap    = flag.Int("buffer", 65536, "parked inserts per down owner (0 disables buffering)")
		bufferPolicy = flag.String("buffer-policy", "shed",
			"full-buffer policy for down-owner inserts: block (backpressure) or shed (503 + Retry-After)")
		blockTimeout = flag.Duration("block-timeout", 5*time.Second,
			"bound on a block-policy wait for buffer space")

		drainTimeout = flag.Duration("draintimeout", 10*time.Second,
			"bound on the shutdown drain (in-flight requests + parked insert replay)")

		pairTimeout = flag.Duration("pair-timeout", 2*time.Minute,
			"deadline for moving one rebalance pair (fence + copy + drain + cutover)")
		moveAttempts = flag.Int("move-attempts", 3,
			"restart attempts per rebalance pair before the move is abandoned")
		pullChunk = flag.Int64("pull-chunk", 256<<10,
			"checkpoint pull chunk size in bytes during a rebalance handoff")

		seed = flag.Int64("seed", 1, "jitter RNG seed")
	)
	flag.Parse()

	if *nodes == "" {
		log.Fatal("dsrouter: -nodes is required (comma-separated dsserve base URLs)")
	}
	var nodeList []string
	for _, n := range strings.Split(*nodes, ",") {
		if n = strings.TrimSpace(n); n != "" {
			nodeList = append(nodeList, n)
		}
	}

	rt, err := router.New(router.Config{
		Nodes:    nodeList,
		Replicas: *replicas,
		Health: router.HealthConfig{
			Interval: *probeInterval,
			Jitter:   *probeJitter,
			Timeout:  *probeTimeout,
			FailK:    *failK,
			ReadyM:   *readyM,
			Seed:     *seed,
		},
		Retry: router.RetryConfig{
			Max:         *retries,
			Base:        *retryBase,
			Cap:         *retryCap,
			BudgetRatio: *budget,
			Seed:        *seed,
		},
		Buffer: router.BufferConfig{
			Capacity: *bufferCap,
			Policy:   *bufferPolicy,
		},
		Rebalance: router.RebalanceConfig{
			PairTimeout:    *pairTimeout,
			MaxAttempts:    *moveAttempts,
			PullChunkBytes: *pullChunk,
		},
		ReqTimeout:   *reqTimeout,
		BlockTimeout: *blockTimeout,
		Logf:         log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	rt.Start()
	log.Printf("dsrouter: %d backends, listening on %s", len(nodeList), ln.Addr())

	srv := &http.Server{
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		cctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if cerr := rt.Close(cctx); cerr != nil {
			log.Printf("dsrouter: %v", cerr)
		}
		log.Fatal(err)
	case <-ctx.Done():
	}
	shCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	err = srv.Shutdown(shCtx) // stop accepting, wait out in-flight requests
	if cerr := rt.Close(shCtx); err == nil {
		err = cerr
	}
	<-errc // Serve has returned http.ErrServerClosed by now
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	log.Printf("dsrouter: drained and exiting")
}
