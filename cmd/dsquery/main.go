// Command dsquery builds a Delegation Sketch from a trace file using T
// concurrent threads, then answers point queries — from -keys, from a
// stdin batch, or the top-k heavy hitters — and reports accuracy against
// exact counts when -exact is set.
//
// Usage:
//
//	dsquery -trace ports.dsk -threads 8 -keys 443,80,22
//	dsquery -trace ports.dsk -threads 8 -top 10 -exact
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"dsketch"
	"dsketch/internal/count"
	"dsketch/internal/stream"
	"dsketch/internal/topk"
	"dsketch/internal/trace"
)

// die reports a fatal error through log (which owns its stderr write
// errors) and exits with the given status.
func die(code int, format string, args ...any) {
	log.Printf(format, args...)
	os.Exit(code)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("dsquery: ")
	var (
		tracePath = flag.String("trace", "", "input trace file (required)")
		threads   = flag.Int("threads", runtime.NumCPU(), "number of insertion threads")
		width     = flag.Int("width", 4096, "sketch buckets per row")
		depth     = flag.Int("depth", 8, "sketch rows")
		keysFlag  = flag.String("keys", "", "comma-separated keys to query")
		top       = flag.Int("top", 0, "also report the top-k heavy hitters")
		exact     = flag.Bool("exact", false, "compare against exact counts")
		stdin     = flag.Bool("stdin", false, "read one key per line from stdin")
	)
	flag.Parse()
	if *tracePath == "" {
		die(2, "-trace is required")
	}

	keys, err := readTrace(*tracePath)
	if err != nil {
		die(1, "%v", err)
	}
	fmt.Printf("trace: %d keys\n", len(keys))

	s := dsketch.New(dsketch.Config{Threads: *threads, Width: *width, Depth: *depth})
	subs := stream.Split(keys, *threads)

	var tk *topk.SpaceSaving
	if *top > 0 {
		tk = topk.New(*top * 4)
	}
	var tkMu sync.Mutex

	var done atomic.Int32
	var wg sync.WaitGroup
	for tid := 0; tid < *threads; tid++ {
		h := s.Handle(tid)
		sub := subs[tid]
		wg.Add(1)
		go func(h *dsketch.Handle, sub []uint64) {
			defer wg.Done()
			for _, k := range sub {
				h.Insert(k)
				if tk != nil {
					tkMu.Lock()
					tk.Observe(k, 1)
					tkMu.Unlock()
				}
			}
			done.Add(1)
			for int(done.Load()) < *threads {
				h.Help()
				runtime.Gosched()
			}
		}(h, sub)
	}
	wg.Wait()
	s.Flush()

	var oracle *count.Exact
	if *exact {
		oracle = count.NewExact()
		for _, k := range keys {
			oracle.Add(k, 1)
		}
	}

	report := func(k uint64) {
		est := s.Query(k) // workers exited: quiescent query path
		if oracle != nil {
			truth := oracle.Count(k)
			fmt.Printf("key %-12d estimate %-10d exact %-10d error %d\n", k, est, truth, est-truth)
		} else {
			fmt.Printf("key %-12d estimate %d\n", k, est)
		}
	}

	if *keysFlag != "" {
		for _, part := range strings.Split(*keysFlag, ",") {
			k, err := strconv.ParseUint(strings.TrimSpace(part), 10, 64)
			if err != nil {
				die(2, "bad key %q: %v", part, err)
			}
			report(k)
		}
	}
	if *stdin {
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				continue
			}
			k, err := strconv.ParseUint(line, 10, 64)
			if err != nil {
				log.Printf("bad key %q: %v", line, err)
				continue
			}
			report(k)
		}
	}
	if tk != nil {
		fmt.Printf("\ntop-%d heavy hitters (Space-Saving + sketch estimates):\n", *top)
		for i, e := range tk.Top(*top) {
			fmt.Printf("%2d. key %-12d sketch-estimate %d\n", i+1, e.Key, s.Query(e.Key))
		}
	}
	st := s.Stats()
	fmt.Printf("\nstats: drains=%d served-queries=%d squashed=%d\n",
		st.Drains, st.ServedQueries, st.Squashed)
}

func readTrace(path string) ([]uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	//lint:ignore all read-only file; a close error cannot lose data
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return nil, err
	}
	return r.ReadAll()
}
