// Command dsbench regenerates the paper's evaluation artifacts: every
// table and figure has an experiment id (see DESIGN.md §3).
//
// Usage:
//
//	dsbench -list
//	dsbench -experiment fig5            # simulated platform A scaling
//	dsbench -experiment fig5 -mode both # also run natively on this host
//	dsbench -experiment all -quick -format csv > results.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"dsketch/internal/expt"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dsbench: ")
	var (
		id     = flag.String("experiment", "", "experiment id (e.g. fig5, table1) or 'all'")
		list   = flag.Bool("list", false, "list available experiments")
		mode   = flag.String("mode", "sim", "throughput engine: sim | native | both")
		quick  = flag.Bool("quick", false, "shrink sweeps for a fast run")
		format = flag.String("format", "text", "output format: text | csv")
		ops    = flag.Int("ops", 0, "operations per thread (0 = experiment default)")
		seed   = flag.Uint64("seed", 42, "workload and hash seed")
	)
	flag.Parse()

	if *list || *id == "" {
		fmt.Println("Available experiments (paper artifact -> id):")
		for _, e := range expt.All() {
			fmt.Printf("  %-9s %s\n", e.ID, e.Title)
		}
		if *id == "" && !*list {
			os.Exit(2)
		}
		return
	}

	opts := expt.Options{
		Mode:         *mode,
		Quick:        *quick,
		OpsPerThread: *ops,
		Seed:         *seed,
	}

	var exps []expt.Experiment
	if *id == "all" {
		exps = expt.All()
	} else {
		e, err := expt.ByID(*id)
		if err != nil {
			log.Print(err)
			os.Exit(2)
		}
		exps = []expt.Experiment{e}
	}

	for _, e := range exps {
		fmt.Printf("# %s — %s\n\n", e.ID, e.Title)
		for _, tbl := range e.Run(opts) {
			if *format == "csv" {
				tbl.RenderCSV(os.Stdout)
				fmt.Println()
			} else {
				tbl.Render(os.Stdout)
			}
		}
	}
}
