// Command dsbench regenerates the paper's evaluation artifacts: every
// table and figure has an experiment id (see DESIGN.md §3).
//
// Usage:
//
//	dsbench -list
//	dsbench -experiment fig5            # simulated platform A scaling
//	dsbench -experiment fig5 -mode both # also run natively on this host
//	dsbench -experiment all -quick -format csv > results.csv
//	dsbench -bench 6                    # emit results/BENCH_6.json
//	dsbench -bench 6 -quick -out results/BENCH_6.json -cpuprofile drain.pprof
//	dsbench -bench 7                    # 90/10 mixed workload + staleness sweep
//	dsbench -check results/BENCH_6.json # validate an emitted trajectory
//
// Bench numbers map to issues: 6 is the insert-only ingestion trajectory,
// 7 is the pause-free read path (mixed 90/10 workload plus the
// accuracy-vs-staleness sweep; also writes results/STALENESS_7.txt).
// -check sniffs the report's "bench" field and applies the matching
// validator.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime/pprof"
	"time"

	"dsketch/internal/expt"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dsbench: ")
	var (
		id      = flag.String("experiment", "", "experiment id (e.g. fig5, table1) or 'all'")
		list    = flag.Bool("list", false, "list available experiments")
		mode    = flag.String("mode", "sim", "throughput engine: sim | native | both")
		quick   = flag.Bool("quick", false, "shrink sweeps for a fast run")
		format  = flag.String("format", "text", "output format: text | csv")
		ops     = flag.Int("ops", 0, "operations per thread (0 = experiment default)")
		seed    = flag.Uint64("seed", 42, "workload and hash seed")
		bench   = flag.Int("bench", 0, "emit the ingestion perf trajectory BENCH_<n>.json (n = issue number)")
		out     = flag.String("out", "", "bench output path (default results/BENCH_<n>.json)")
		check   = flag.String("check", "", "validate an existing BENCH_<n>.json and exit")
		cpuprof = flag.String("cpuprofile", "", "write a CPU profile of the bench run (covers the worker drain loop)")
	)
	flag.Parse()

	if *check != "" {
		runCheck(*check)
		return
	}
	if *bench > 0 {
		runBench(*bench, *out, *cpuprof, expt.Options{
			Quick: *quick, OpsPerThread: *ops, Seed: *seed,
		})
		return
	}

	if *list || *id == "" {
		fmt.Println("Available experiments (paper artifact -> id):")
		for _, e := range expt.All() {
			fmt.Printf("  %-9s %s\n", e.ID, e.Title)
		}
		if *id == "" && !*list {
			os.Exit(2)
		}
		return
	}

	opts := expt.Options{
		Mode:         *mode,
		Quick:        *quick,
		OpsPerThread: *ops,
		Seed:         *seed,
	}

	var exps []expt.Experiment
	if *id == "all" {
		exps = expt.All()
	} else {
		e, err := expt.ByID(*id)
		if err != nil {
			log.Print(err)
			os.Exit(2)
		}
		exps = []expt.Experiment{e}
	}

	for _, e := range exps {
		fmt.Printf("# %s — %s\n\n", e.ID, e.Title)
		for _, tbl := range e.Run(opts) {
			if *format == "csv" {
				tbl.RenderCSV(os.Stdout)
				fmt.Println()
			} else {
				tbl.Render(os.Stdout)
			}
		}
	}
}

// benchReport is what every bench family must produce: validated before
// it is written so CI never archives a regressed or malformed report.
type benchReport interface {
	Validate() error
	Tables() []*expt.Table
}

// runBench emits one perf trajectory (results/BENCH_<n>.json). Bench 6
// is the simulated insert-only scaling sweep plus native pool enqueue
// latencies; bench 7 is the 90/10 mixed workload over the pause-free
// read path, which additionally renders its accuracy-vs-staleness sweep
// to results/STALENESS_7.txt next to the JSON.
func runBench(n int, out, cpuprof string, o expt.Options) {
	if out == "" {
		out = filepath.Join("results", fmt.Sprintf("BENCH_%d.json", n))
	}
	if cpuprof != "" {
		f, err := os.Create(cpuprof)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
	}
	var r benchReport
	var summary string
	switch n {
	case 6:
		b := expt.RunIngestBench(o)
		b.Bench = n
		b.Unix = time.Now().Unix()
		r = b
		summary = fmt.Sprintf("scaling 1→8 = %.2f×", b.ScalingRatio1to8)
	case 7:
		m := expt.RunMixedBench(o)
		m.Unix = time.Now().Unix()
		r = m
		summary = fmt.Sprintf("ingest retention %.3f over %d arms", m.IngestRetention, len(m.Arms))
		defer writeStalenessTables(filepath.Join(filepath.Dir(out), fmt.Sprintf("STALENESS_%d.txt", n)), m)
	default:
		// An unknown number must not silently run some other family and
		// archive a mislabeled trajectory.
		log.Fatalf("unknown -bench %d: known bench numbers are 6 (insert-only ingestion sweep) and 7 (pause-free read path, 90/10 mixed workload)", n)
	}
	if err := r.Validate(); err != nil {
		log.Fatalf("bench run failed validation: %v", err)
	}
	if err := os.MkdirAll(filepath.Dir(out), 0o755); err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(out)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	for _, tbl := range r.Tables() {
		tbl.Render(os.Stdout)
	}
	fmt.Printf("wrote %s (%s)\n", out, summary)
}

// writeStalenessTables renders the bench-7 accuracy-vs-staleness sweep
// as the committed results table the experiment satellite calls for.
func writeStalenessTables(path string, m *expt.MixedBenchReport) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	for _, tbl := range expt.StalenessTables(m.Staleness) {
		tbl.Render(f)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}

// runCheck re-validates a previously emitted trajectory: valid JSON,
// structurally complete, its family's gates still met. The bench number
// in the report selects the validator.
func runCheck(path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	var head struct {
		Bench int `json:"bench"`
	}
	if err := json.Unmarshal(data, &head); err != nil {
		log.Fatalf("%s: not valid JSON: %v", path, err)
	}
	switch head.Bench {
	case 6:
		r, err := expt.ReadBenchReport(bytes.NewReader(data))
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		fmt.Printf("%s: ok (bench %d, %d scaling points, %d native points, scaling 1→8 = %.2f×)\n",
			path, r.Bench, len(r.Scaling), len(r.Native), r.ScalingRatio1to8)
	case 7:
		r, err := expt.ReadMixedBenchReport(bytes.NewReader(data))
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		fmt.Printf("%s: ok (bench %d, %d arms, ingest retention %.3f, %d staleness points)\n",
			path, r.Bench, len(r.Arms), r.IngestRetention, len(r.Staleness))
	default:
		log.Fatalf("%s: unknown bench number %d in report: known bench numbers are 6 and 7", path, head.Bench)
	}
}
