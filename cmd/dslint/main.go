// Command dslint runs the repository's concurrency-invariant static
// analyzers (internal/lint) over package patterns and fails the build on
// any unsuppressed finding. It is part of the canonical gate: make lint,
// make check and ci.sh all run it alongside go vet.
//
// Usage:
//
//	dslint [-json] [-list] [packages ...]
//
//	dslint ./...                   # whole module (testdata is skipped)
//	dslint ./internal/pool         # one package
//	dslint -json ./... > lint.json
//
// Exit status: 0 when clean, 1 when any diagnostic survives suppression,
// 2 on usage or load errors. Findings are suppressed in source with
// //lint:ignore <rule> <reason> on the offending line or the line above.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"dsketch/internal/lint"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dslint: ")
	var (
		jsonOut = flag.Bool("json", false, "emit diagnostics as a JSON array")
		list    = flag.Bool("list", false, "list registered analyzers and exit")
	)
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-20s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		log.Print(err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		log.Print(err)
		os.Exit(2)
	}
	diags := lint.Run(pkgs, analyzers)

	if *jsonOut {
		if err := lint.WriteJSON(os.Stdout, diags); err != nil {
			log.Print(err)
			os.Exit(2)
		}
	} else {
		cwd, err := os.Getwd()
		if err != nil {
			cwd = loader.ModuleDir
		}
		lint.WriteText(os.Stdout, cwd, diags)
	}
	if len(diags) > 0 {
		if !*jsonOut {
			log.Printf("%d finding(s) in %d package(s)", len(diags), len(pkgs))
		}
		os.Exit(1)
	}
}
