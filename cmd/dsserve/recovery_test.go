package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"dsketch"
)

// ckptConfig is testConfig plus durability into dir. The background
// interval is an hour so tests control exactly when checkpoints happen.
func ckptConfig(dir string) config {
	cfg := testConfig()
	cfg.ckptDir = dir
	cfg.ckptInterval = time.Hour
	cfg.ckptKeep = 3
	return cfg
}

func TestCheckpointFlagValidation(t *testing.T) {
	file := filepath.Join(t.TempDir(), "plain-file")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func(*config)
	}{
		{"zero interval", func(c *config) { c.ckptInterval = 0 }},
		{"negative interval", func(c *config) { c.ckptInterval = -time.Second }},
		{"zero keep", func(c *config) { c.ckptKeep = 0 }},
		{"negative keep", func(c *config) { c.ckptKeep = -1 }},
		{"nonexistent dir", func(c *config) { c.ckptDir = filepath.Join(c.ckptDir, "missing") }},
		{"dir is a file", func(c *config) { c.ckptDir = file }},
		{"interval without dir", func(c *config) { c.ckptDir = "" }},
	}
	for _, tc := range cases {
		cfg := ckptConfig(t.TempDir())
		tc.mut(&cfg)
		if _, err := prepServer(cfg); err == nil {
			t.Errorf("%s: prepServer accepted bad checkpoint flags %+v", tc.name, cfg)
		}
	}
	if _, err := prepServer(ckptConfig(t.TempDir())); err != nil {
		t.Fatalf("valid checkpoint config rejected: %v", err)
	}
}

// TestHealthzLifecycle walks one server through its whole life:
// 503 recovering before open, 200 serving, 503 draining after shutdown.
func TestHealthzLifecycle(t *testing.T) {
	s, err := prepServer(ckptConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	mux := s.mux()
	get := func(url string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
		return rec
	}
	if rec := get("/healthz"); rec.Code != http.StatusServiceUnavailable ||
		!strings.Contains(rec.Body.String(), "recovering") {
		t.Fatalf("pre-open healthz = %d %q, want 503 recovering", rec.Code, rec.Body.String())
	}
	// Traffic endpoints are gated too: no pool exists yet.
	if rec := get("/query?key=1"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("pre-open query = %d, want 503", rec.Code)
	}
	if err := s.open(); err != nil {
		t.Fatal(err)
	}
	if rec := get("/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("serving healthz = %d, want 200", rec.Code)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.serve(ctx, ln) }()
	// Make sure the listener is actually serving before pulling the plug.
	resp, err := http.Get("http://" + ln.Addr().String() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	cancel()
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v", err)
	}
	if rec := get("/healthz"); rec.Code != http.StatusServiceUnavailable ||
		!strings.Contains(rec.Body.String(), "draining") {
		t.Fatalf("post-drain healthz = %d %q, want 503 draining", rec.Code, rec.Body.String())
	}
}

// TestCrashRestartRecoversCheckpointedCounts is the kill -9 end-to-end
// test: a loaded server checkpoints, takes more traffic, then "crashes"
// (its pool is abandoned without any graceful drain — nothing after the
// checkpoint is persisted). A fresh server over the same directory must
// recover, and every count acknowledged before the checkpoint must be
// covered by the restored estimates.
func TestCrashRestartRecoversCheckpointedCounts(t *testing.T) {
	dir := t.TempDir()
	s1, err := newServer(ckptConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	if s1.restored != nil {
		t.Fatalf("fresh dir reported a recovery: %+v", s1.restored)
	}
	mux1 := s1.mux()
	keys := []uint64{11, 22, 33, 44}
	insert := func(mux *http.ServeMux, key, count uint64) {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(http.MethodPost,
			fmt.Sprintf("/insert?key=%d&count=%d", key, count), nil))
		if rec.Code != http.StatusAccepted {
			t.Fatalf("insert key=%d: status %d", key, rec.Code)
		}
	}
	query := func(mux *http.ServeMux, key uint64) uint64 {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet,
			fmt.Sprintf("/query?key=%d", key), nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("query key=%d: status %d", key, rec.Code)
		}
		n, err := strconv.ParseUint(strings.TrimSpace(rec.Body.String()), 10, 64)
		if err != nil {
			t.Fatalf("query key=%d: body %q", key, rec.Body.String())
		}
		return n
	}

	checkpointed := make([]uint64, len(keys))
	for i, k := range keys {
		checkpointed[i] = uint64(i+1) * 10
		insert(mux1, k, checkpointed[i])
	}
	info, err := s1.pool.Checkpoint(context.Background(), dir)
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	// Post-checkpoint traffic: acknowledged but never persisted — the
	// crash below happens before any further checkpoint.
	extra := make([]uint64, len(keys))
	for i, k := range keys {
		extra[i] = 5
		insert(mux1, k, extra[i])
	}
	// Crash: abandon s1 without Drain/Close. Its workers leak for the
	// rest of the test, exactly like a killed process's state vanishes.

	s2, err := prepServer(ckptConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	mux2 := s2.mux()
	rec := httptest.NewRecorder()
	mux2.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz before recovery = %d, want 503", rec.Code)
	}
	if err := s2.open(); err != nil {
		t.Fatalf("restart recovery: %v", err)
	}
	defer s2.pool.Close()
	if s2.restored == nil || s2.restored.Gen != info.Gen {
		t.Fatalf("restored = %+v, want generation %d", s2.restored, info.Gen)
	}
	rec = httptest.NewRecorder()
	mux2.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz after recovery = %d, want 200", rec.Code)
	}
	for i, k := range keys {
		got := query(mux2, k)
		if got < checkpointed[i] {
			t.Fatalf("key %d: recovered %d < %d acknowledged at the checkpoint", k, got, checkpointed[i])
		}
		if got > checkpointed[i]+extra[i] {
			t.Fatalf("key %d: recovered %d > %d ever accepted (double count)", k, got, checkpointed[i]+extra[i])
		}
	}
	// The recovered server keeps serving writes on top of restored state.
	insert(mux2, keys[0], 3)
	s2.pool.Quiesce(func(*dsketch.Sketch) {}) // flush the insert before querying
	if got := query(mux2, keys[0]); got < checkpointed[0]+3 {
		t.Fatalf("live insert after recovery: %d < %d", got, checkpointed[0]+3)
	}
	// Stats exposes the durability block.
	rec = httptest.NewRecorder()
	mux2.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	for _, frag := range []string{"uptime_seconds=", "checkpoints=", "checkpoint_failures=", "last_checkpoint_gen="} {
		if !strings.Contains(rec.Body.String(), frag) {
			t.Fatalf("/stats missing %q:\n%s", frag, rec.Body.String())
		}
	}
}
