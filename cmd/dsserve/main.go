// Command dsserve runs a Delegation Sketch as a small network monitoring
// daemon: keys are ingested and queried over HTTP while the sketch's
// worker threads run the cooperative delegation protocol underneath.
//
// It demonstrates the integration pattern for environments where requests
// arrive on arbitrary goroutines (HTTP handlers, RPC servers) but the
// sketch requires one goroutine per thread id: a fixed pool of workers
// owns the Handles and consumes from sharded channels; handlers only
// enqueue.
//
// Endpoints:
//
//	POST /insert?key=<uint64|string>[&count=n]
//	GET  /query?key=<uint64|string>
//	GET  /topk?k=10        (requires -topk)
//	GET  /stats
//
// Usage:
//
//	dsserve -addr :8080 -threads 4 -topk
//	curl -X POST 'localhost:8080/insert?key=10.0.0.1'
//	curl 'localhost:8080/query?key=10.0.0.1'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"dsketch"
)

// insertReq is one enqueued insertion.
type insertReq struct {
	key   uint64
	count uint64
}

// queryReq is one enqueued point query; the result is sent on reply.
type queryReq struct {
	key   uint64
	reply chan uint64
}

// pauseReq parks a worker for a window of true quiescence (required by
// Flush and HeavyHitters). The barrier is two-phase: a worker that has
// reached the barrier must keep *helping* until every worker has reached
// it — another worker may be blocked mid-operation waiting for this one
// to serve delegated work — and only then stop touching the sketch and
// wait passively for resume.
type pauseReq struct {
	parked chan struct{} // phase 1 ack: reached the barrier (still helping)
	hold   chan struct{} // closed by the coordinator when all have parked
	held   chan struct{} // phase 2 ack: stopped helping
	resume chan struct{} // closed by the coordinator after fn runs
}

// server owns the sketch and the worker pool.
type server struct {
	sketch  *dsketch.Sketch
	inserts []chan insertReq
	queries []chan queryReq
	pauses  []chan pauseReq
	next    atomic.Uint64 // round-robin shard cursor
	topk    bool
}

// quiesce parks every worker (two-phase, see pauseReq), runs fn on the
// quiescent sketch, and resumes them.
func (s *server) quiesce(fn func()) {
	req := pauseReq{
		parked: make(chan struct{}, len(s.pauses)),
		hold:   make(chan struct{}),
		held:   make(chan struct{}, len(s.pauses)),
		resume: make(chan struct{}),
	}
	for tid := range s.pauses {
		s.pauses[tid] <- req
	}
	for range s.pauses {
		<-req.parked // everyone is at the barrier (no op in flight)
	}
	close(req.hold)
	for range s.pauses {
		<-req.held // everyone has stopped touching the sketch
	}
	fn()
	close(req.resume)
}

// worker is the goroutine owning thread tid's Handle: it consumes its
// shard's channels and keeps helping (the delegation protocol's liveness
// requirement) whenever it is otherwise idle.
func (s *server) worker(tid int) {
	h := s.sketch.Handle(tid)
	idle := time.NewTicker(100 * time.Microsecond)
	defer idle.Stop()
	for {
		select {
		case req, ok := <-s.inserts[tid]:
			if !ok {
				return
			}
			h.InsertCount(req.key, req.count)
		case q := <-s.queries[tid]:
			q.reply <- h.Query(q.key)
		case p := <-s.pauses[tid]:
			p.parked <- struct{}{}
			holding := true
			for holding {
				select {
				case <-p.hold:
					holding = false
				default:
					h.Help() // someone may be blocked on us mid-op
					runtime.Gosched()
				}
			}
			p.held <- struct{}{}
			<-p.resume
		case <-idle.C:
			h.Help()
			runtime.Gosched()
		}
	}
}

// shard picks the next worker round-robin.
func (s *server) shard() int {
	return int(s.next.Add(1) % uint64(len(s.inserts)))
}

// parseKey accepts either a decimal uint64 or an arbitrary string (which
// is fingerprinted, matching InsertString/QueryString semantics).
func parseKey(raw string) (uint64, error) {
	if raw == "" {
		return 0, fmt.Errorf("missing key parameter")
	}
	if k, err := strconv.ParseUint(raw, 10, 64); err == nil {
		return k, nil
	}
	return dsketch.Fingerprint(raw), nil
}

func (s *server) handleInsert(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	key, err := parseKey(r.URL.Query().Get("key"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	count := uint64(1)
	if c := r.URL.Query().Get("count"); c != "" {
		count, err = strconv.ParseUint(c, 10, 64)
		if err != nil || count == 0 {
			http.Error(w, "bad count", http.StatusBadRequest)
			return
		}
	}
	s.inserts[s.shard()] <- insertReq{key: key, count: count}
	w.WriteHeader(http.StatusAccepted)
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	key, err := parseKey(r.URL.Query().Get("key"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	reply := make(chan uint64, 1)
	s.queries[s.shard()] <- queryReq{key: key, reply: reply}
	fmt.Fprintf(w, "%d\n", <-reply)
}

func (s *server) handleTopK(w http.ResponseWriter, r *http.Request) {
	if !s.topk {
		http.Error(w, "server started without -topk", http.StatusNotFound)
		return
	}
	k := 10
	if raw := r.URL.Query().Get("k"); raw != "" {
		if v, err := strconv.Atoi(raw); err == nil && v > 0 {
			k = v
		}
	}
	// HeavyHitters and Flush are quiescent-only: park the workers, flush
	// so filter-resident counts are visible, snapshot, resume.
	s.quiesce(func() {
		s.sketch.Flush()
		for i, e := range s.sketch.HeavyHitters(k) {
			fmt.Fprintf(w, "%2d. key=%d count=%d (±%d)\n", i+1, e.Key, e.Count, e.Err)
		}
	})
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := s.sketch.Stats()
	fmt.Fprintf(w, "drains=%d served_queries=%d squashed=%d direct_queries=%d memory_bytes=%d\n",
		st.Drains, st.ServedQueries, st.Squashed, st.DirectQueries, s.sketch.MemoryBytes())
}

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		threads = flag.Int("threads", runtime.NumCPU(), "sketch worker threads")
		width   = flag.Int("width", 4096, "sketch buckets per row")
		depth   = flag.Int("depth", 8, "sketch rows")
		topk    = flag.Bool("topk", false, "enable the /topk endpoint")
	)
	flag.Parse()

	s := &server{
		sketch: dsketch.New(dsketch.Config{
			Threads:           *threads,
			Width:             *width,
			Depth:             *depth,
			TrackHeavyHitters: *topk,
		}),
		inserts: make([]chan insertReq, *threads),
		queries: make([]chan queryReq, *threads),
		topk:    *topk,
	}
	s.pauses = make([]chan pauseReq, *threads)
	for tid := 0; tid < *threads; tid++ {
		s.inserts[tid] = make(chan insertReq, 1024)
		s.queries[tid] = make(chan queryReq, 64)
		s.pauses[tid] = make(chan pauseReq, 1)
		go s.worker(tid)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/insert", s.handleInsert)
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/topk", s.handleTopK)
	mux.HandleFunc("/stats", s.handleStats)

	log.Printf("dsserve: %d threads, %d bytes of sketch, listening on %s",
		*threads, s.sketch.MemoryBytes(), *addr)
	log.Fatal(http.ListenAndServe(*addr, mux))
}
