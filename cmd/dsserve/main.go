// Command dsserve runs a Delegation Sketch as a small network monitoring
// daemon: keys are ingested and queried over HTTP while the sketch's
// worker threads run the cooperative delegation protocol underneath.
//
// It is a thin shim over dsketch.Pool, which owns the worker goroutines,
// the batched sharded ingestion, and the quiescence machinery — requests
// may arrive on arbitrary goroutines (HTTP handlers) and the pool bridges
// them to the sketch's one-goroutine-per-thread protocol.
//
// Endpoints:
//
//	POST /insert?key=<uint64|string>[&count=n]
//	GET  /query?key=<uint64|string>[&key=...]   (repeat key for a batch)
//	GET  /topk?k=10        (requires -topk)
//	GET  /stats
//
// Usage:
//
//	dsserve -addr :8080 -threads 4 -topk
//	curl -X POST 'localhost:8080/insert?key=10.0.0.1'
//	curl 'localhost:8080/query?key=10.0.0.1'
//	curl 'localhost:8080/query?key=10.0.0.1&key=10.0.0.2'
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"dsketch"
)

// server is the HTTP surface over the pool.
type server struct {
	pool *dsketch.Pool
	topk bool
}

// writef writes one formatted response line; a false return means the
// client has gone away (the only way an http.ResponseWriter write fails)
// and the handler should stop producing output.
func writef(w io.Writer, format string, args ...any) bool {
	_, err := fmt.Fprintf(w, format, args...)
	return err == nil
}

// parseKey accepts either a decimal uint64 or an arbitrary string (which
// is fingerprinted, matching InsertString/QueryString semantics).
func parseKey(raw string) (uint64, error) {
	if raw == "" {
		return 0, fmt.Errorf("missing key parameter")
	}
	if k, err := strconv.ParseUint(raw, 10, 64); err == nil {
		return k, nil
	}
	return dsketch.Fingerprint(raw), nil
}

func (s *server) handleInsert(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	key, err := parseKey(r.URL.Query().Get("key"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	count := uint64(1)
	if c := r.URL.Query().Get("count"); c != "" {
		count, err = strconv.ParseUint(c, 10, 64)
		if err != nil || count == 0 {
			http.Error(w, "bad count", http.StatusBadRequest)
			return
		}
	}
	s.pool.InsertCount(key, count)
	w.WriteHeader(http.StatusAccepted)
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	raws := r.URL.Query()["key"]
	if len(raws) == 0 {
		http.Error(w, "missing key parameter", http.StatusBadRequest)
		return
	}
	keys := make([]uint64, len(raws))
	for i, raw := range raws {
		k, err := parseKey(raw)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		keys[i] = k
	}
	if len(keys) == 1 {
		writef(w, "%d\n", s.pool.Query(keys[0]))
		return
	}
	// A multi-key query is answered by one worker in a single pass.
	for i, c := range s.pool.QueryBatch(keys) {
		if !writef(w, "%s %d\n", raws[i], c) {
			return
		}
	}
}

func (s *server) handleTopK(w http.ResponseWriter, r *http.Request) {
	if !s.topk {
		http.Error(w, "server started without -topk", http.StatusNotFound)
		return
	}
	k := 10
	if raw := r.URL.Query().Get("k"); raw != "" {
		if v, err := strconv.Atoi(raw); err == nil && v > 0 {
			k = v
		}
	}
	// One quiescent pause: flush, snapshot the heavy hitters, resume.
	snap := s.pool.Snapshot(k)
	for i, e := range snap.HeavyHitters {
		if !writef(w, "%2d. key=%d count=%d (±%d)\n", i+1, e.Key, e.Count, e.Err) {
			return
		}
	}
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := s.pool.Stats()
	if !writef(w, "drains=%d searches=%d served_queries=%d squashed=%d direct_queries=%d delegated_posts=%d memory_bytes=%d\n",
		st.Drains, st.Searches, st.ServedQueries, st.Squashed, st.DirectQueries,
		st.DelegatedPosts, s.pool.MemoryBytes()) {
		return
	}
	m := s.pool.Metrics()
	if !writef(w, "pool_inserts=%d pool_queries=%d pool_query_keys=%d backpressure=%d quiesces=%d\n",
		m.Inserts, m.Queries, m.QueryKeys, m.Backpressure, m.Quiesces) {
		return
	}
	if !writef(w, "batches=%d batch_mean=%.1f batch_max=%d depth_mean=%.1f depth_max=%d\n",
		m.Batches, m.BatchMean, m.BatchMax, m.DepthMean, m.DepthMax) {
		return
	}
	writef(w, "enqueue_p50=%v enqueue_p99=%v enqueue_max=%v pause_mean=%v pause_max=%v\n",
		m.EnqueueP50, m.EnqueueP99, m.EnqueueMax, m.PauseMean, m.PauseMax)
}

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		threads = flag.Int("threads", runtime.NumCPU(), "sketch worker threads")
		width   = flag.Int("width", 4096, "sketch buckets per row")
		depth   = flag.Int("depth", 8, "sketch rows")
		topk    = flag.Bool("topk", false, "enable the /topk endpoint")
		batch   = flag.Int("batch", 256, "max insertions drained per chunk")
		queue   = flag.Int("queue", 4096, "per-shard ingest buffer capacity")
		idle    = flag.Duration("idlehelp", 100*time.Microsecond,
			"idle worker helping period (0 busy-polls: lower latency, one core per idle worker)")
	)
	flag.Parse()

	s := &server{
		pool: dsketch.NewPool(dsketch.PoolConfig{
			Config: dsketch.Config{
				Threads:           *threads,
				Width:             *width,
				Depth:             *depth,
				TrackHeavyHitters: *topk,
			},
			BatchSize:     *batch,
			QueueCapacity: *queue,
			IdleHelp:      *idle,
		}),
		topk: *topk,
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/insert", s.handleInsert)
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/topk", s.handleTopK)
	mux.HandleFunc("/stats", s.handleStats)

	log.Printf("dsserve: %d threads, %d bytes of sketch, listening on %s",
		s.pool.Threads(), s.pool.MemoryBytes(), *addr)
	log.Fatal(http.ListenAndServe(*addr, mux))
}
