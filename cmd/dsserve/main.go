// Command dsserve runs a Delegation Sketch as a small network monitoring
// daemon: keys are ingested and queried over HTTP while the sketch's
// worker threads run the cooperative delegation protocol underneath.
//
// It is a thin shim over dsketch.Pool, which owns the worker goroutines,
// the batched sharded ingestion, and the quiescence machinery — requests
// may arrive on arbitrary goroutines (HTTP handlers) and the pool bridges
// them to the sketch's one-goroutine-per-thread protocol.
//
// Endpoints:
//
//	POST /insert?key=<uint64|string>[&count=n]
//	POST /insertbatch      (body: "key [count]" lines; X-Accepted reports
//	                        the applied prefix, so routers can retry or
//	                        account partial failures exactly)
//	GET  /query?key=<uint64|string>[&key=...]   (repeat key for a batch)
//	GET  /topk?k=10        (requires -topk)
//	GET  /stats
//	GET  /healthz          (200 serving, 503 recovering or draining; the
//	                        JSON body {"state":...} lets a router tell a
//	                        draining node — do not retry here — from a
//	                        recovering one — retry soon)
//
// Rebalance transfer plane (driven by dsrouter's /admin/join and
// /admin/leave, see internal/transfer): POST /checkpoint/take publishes
// a fresh checkpoint generation, GET /checkpoint/export streams it in
// resumable CRC-verified chunks (rate-bounded by -transfer-rate), POST
// /checkpoint/import folds a pulled checkpoint into the live pool, and
// /staging/insertbatch + /staging/drain + /staging/abort run the
// dual-routed staging lane for inserts that arrive while a key range is
// mid-move. The checkpoint lanes require -checkpoint-dir; the staging
// lane works without it.
//
// Freshness: /query and /topk default to the exact delegated path. With
// mode=stale they answer from the workers' published snapshot views
// instead — no pause and no worker round-trip, at the cost of bounded
// staleness, reported in the X-Staleness-Lag-Inserts, X-Staleness-Age
// and X-Staleness-Views response headers (X-Staleness-Fresh: true means
// no view was available and the exact path answered). The publication
// cadence is tuned with -viewinterval; -noviews disables the tier.
//
// Overload and shutdown semantics: each request gets a deadline
// (-reqtimeout); an insertion refused under overload (-policy shed) or
// during shutdown answers 503, and a request that outlives its deadline
// answers 504. On SIGINT/SIGTERM the server stops accepting connections,
// finishes in-flight requests, then drains the pool (bounded by
// -draintimeout) so every accepted insertion is flushed into the sketch
// before the process exits.
//
// Durability: with -checkpoint-dir set the pool checkpoints its state
// atomically every -checkpoint-interval (retaining -checkpoint-keep
// generations), takes a final checkpoint during graceful shutdown, and
// recovers the newest intact generation at startup — falling back past
// torn files a crash may have left behind. /healthz answers 503 until
// recovery completes, so load balancers do not route to a still-empty
// sketch.
//
// Usage:
//
//	dsserve -addr :8080 -threads 4 -topk -checkpoint-dir /var/lib/dsserve
//	curl -X POST 'localhost:8080/insert?key=10.0.0.1'
//	curl 'localhost:8080/query?key=10.0.0.1'
//	curl 'localhost:8080/query?key=10.0.0.1&key=10.0.0.2'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"dsketch"
	"dsketch/internal/transfer"
)

// config collects everything main parses from flags, so tests can build
// a server without going through the flag package.
type config struct {
	threads      int
	width        int
	depth        int
	topk         bool
	batch        int
	queue        int
	policy       string // "block" or "shed"
	idleHelp     time.Duration
	reqTimeout   time.Duration // per-request operation deadline (0 = none)
	drainTimeout time.Duration // bound on the shutdown drain
	viewInterval time.Duration // snapshot-view publication period (0 = library default)
	noViews      bool          // disable the bounded-staleness tier

	ckptDir      string        // checkpoint directory ("" disables durability)
	ckptInterval time.Duration // background checkpoint period
	ckptKeep     int           // retained checkpoint generations

	transferRate int64 // /checkpoint/export bytes/sec bound (0 = unlimited)
}

// poolConfig translates the flag surface into the library config.
func (c config) poolConfig() (dsketch.PoolConfig, error) {
	var policy dsketch.OverloadPolicy
	switch c.policy {
	case "", "block":
		policy = dsketch.OverloadBlock
	case "shed":
		policy = dsketch.OverloadShed
	default:
		return dsketch.PoolConfig{}, fmt.Errorf("dsserve: -policy must be block or shed, got %q", c.policy)
	}
	pcfg := dsketch.PoolConfig{
		Config: dsketch.Config{
			Threads:           c.threads,
			Width:             c.width,
			Depth:             c.depth,
			TrackHeavyHitters: c.topk,
		},
		BatchSize:     c.batch,
		QueueCapacity: c.queue,
		Policy:        policy,
		IdleHelp:      c.idleHelp,
		ViewInterval:  c.viewInterval,
		DisableViews:  c.noViews,
	}
	if c.ckptDir != "" {
		pcfg.Checkpoint = dsketch.CheckpointConfig{
			Dir:      c.ckptDir,
			Interval: c.ckptInterval,
			Keep:     c.ckptKeep,
		}
	}
	return pcfg, nil
}

// validateCheckpoint rejects unusable durability flags at startup, before
// the listener opens: a daemon that silently cannot persist is worse than
// one that refuses to start.
func (c config) validateCheckpoint() error {
	if c.ckptDir == "" {
		if c.ckptInterval != 0 || c.ckptKeep != 0 {
			return fmt.Errorf("dsserve: -checkpoint-interval/-checkpoint-keep require -checkpoint-dir")
		}
		return nil
	}
	if c.ckptInterval <= 0 {
		return fmt.Errorf("dsserve: -checkpoint-interval must be positive, got %v", c.ckptInterval)
	}
	if c.ckptKeep <= 0 {
		return fmt.Errorf("dsserve: -checkpoint-keep must be positive, got %d", c.ckptKeep)
	}
	st, err := os.Stat(c.ckptDir)
	if err != nil {
		return fmt.Errorf("dsserve: -checkpoint-dir: %w", err)
	}
	if !st.IsDir() {
		return fmt.Errorf("dsserve: -checkpoint-dir %s is not a directory", c.ckptDir)
	}
	// Probe writability the only portable way: actually create a file.
	f, err := os.CreateTemp(c.ckptDir, ".dsserve-probe-*")
	if err != nil {
		return fmt.Errorf("dsserve: -checkpoint-dir %s is not writable: %w", c.ckptDir, err)
	}
	name := f.Name()
	if err := f.Close(); err != nil {
		return fmt.Errorf("dsserve: -checkpoint-dir probe: %w", err)
	}
	return os.Remove(name)
}

// Health states, in startup order. The zero value is healthRecovering so
// a server answers 503 from the moment its mux exists until open() has
// finished loading durable state.
const (
	healthRecovering int32 = iota
	healthServing
	healthDraining
)

// server is the HTTP surface over the pool.
type server struct {
	pool     *dsketch.Pool
	cfg      config
	health   atomic.Int32
	started  time.Time
	restored *dsketch.RestoreInfo // non-nil after a successful recovery

	// xfer is the rebalance transfer plane; it and xferMux are built at
	// the end of open() (they need the pool), so the dispatcher in mux()
	// answers 503 recovering until then.
	xfer    *transfer.Server
	xferMux atomic.Pointer[http.ServeMux]

	// restoreBarrier is a test seam: when non-nil, open() blocks on it
	// after the pool (and transfer plane) exist but before the server
	// flips to serving — holding the server in the recovering state so
	// tests can verify nothing is admitted while recovery is in flight.
	restoreBarrier chan struct{}
}

// prepServer validates cfg and returns a server with no pool yet: its
// mux already answers (healthz says 503 recovering) but open must run
// before traffic endpoints work.
func prepServer(cfg config) (*server, error) {
	if _, err := cfg.poolConfig(); err != nil {
		return nil, err
	}
	if err := cfg.validateCheckpoint(); err != nil {
		return nil, err
	}
	return &server{cfg: cfg}, nil
}

// open builds the pool — recovering the newest intact checkpoint when a
// checkpoint directory is configured — and flips the server to serving.
func (s *server) open() error {
	pcfg, err := s.cfg.poolConfig()
	if err != nil {
		return err
	}
	if s.cfg.ckptDir != "" {
		pool, ri, err := dsketch.RestorePool(pcfg)
		if err != nil {
			return err
		}
		s.pool, s.restored = pool, ri
	} else {
		pool, err := dsketch.NewPoolChecked(pcfg)
		if err != nil {
			return err
		}
		s.pool = pool
	}
	if err := s.openTransfer(pcfg); err != nil {
		s.pool.Close()
		s.pool = nil
		return err
	}
	if s.restoreBarrier != nil {
		<-s.restoreBarrier
	}
	s.started = time.Now()
	s.health.Store(healthServing)
	return nil
}

// openTransfer builds the rebalance transfer plane over the just-opened
// pool and publishes its mux, making /checkpoint/export live even while
// the server is still recovering (a restarted donor must keep serving
// its generations or a mid-transfer copy could never resume); the gated
// transfer endpoints stay behind the same recovering gate as inserts.
func (s *server) openTransfer(pcfg dsketch.PoolConfig) error {
	xfer, err := transfer.NewServer(transfer.ServerConfig{
		Main: s.pool,
		Dir:  s.cfg.ckptDir,
		NewStaging: func() (*dsketch.Pool, error) {
			// Same sketch geometry as the main pool — the drain is a
			// checkpoint merge and the geometry check refuses drift — but
			// no durability (the lane is discardable by design) and no
			// snapshot views (nothing reads stale answers from it).
			scfg := pcfg
			scfg.Checkpoint = dsketch.CheckpointConfig{}
			scfg.DisableViews = true
			return dsketch.NewPoolChecked(scfg)
		},
		ExportRate: s.cfg.transferRate,
	})
	if err != nil {
		return err
	}
	xm := http.NewServeMux()
	xfer.Register(xm, s.recovered)
	s.xfer = xfer
	s.xferMux.Store(xm)
	return nil
}

// dispatchTransfer routes a transfer-plane request to the mux built in
// open(). Before open() has run there is no pool to transfer against,
// so the refusal mirrors the recovering gate (Retry-After, X-Accepted 0).
func (s *server) dispatchTransfer(w http.ResponseWriter, r *http.Request) {
	xm := s.xferMux.Load()
	if xm == nil {
		w.Header().Set("Retry-After", "1")
		w.Header().Set(transfer.HeaderAccepted, "0")
		http.Error(w, "recovering", http.StatusServiceUnavailable)
		return
	}
	xm.ServeHTTP(w, r)
}

// newServer validates cfg, builds the pool under it, and recovers
// durable state when configured.
func newServer(cfg config) (*server, error) {
	s, err := prepServer(cfg)
	if err != nil {
		return nil, err
	}
	if err := s.open(); err != nil {
		return nil, err
	}
	return s, nil
}

// mux routes the endpoints. Traffic handlers are gated on recovery
// having finished (the pool does not exist before open returns); after a
// drain they keep answering queries quiescently, so only the recovering
// state is gated, not draining.
func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/insert", s.recovered(s.handleInsert))
	mux.HandleFunc("/insertbatch", s.recovered(s.handleInsertBatch))
	mux.HandleFunc("/query", s.recovered(s.handleQuery))
	mux.HandleFunc("/topk", s.recovered(s.handleTopK))
	mux.HandleFunc("/stats", s.recovered(s.handleStats))
	mux.HandleFunc("/healthz", s.handleHealthz)
	for _, p := range []string{
		"/checkpoint/take", "/checkpoint/export", "/checkpoint/provenance",
		"/checkpoint/import",
		"/staging/insertbatch", "/staging/drain", "/staging/abort",
	} {
		mux.HandleFunc(p, s.dispatchTransfer)
	}
	return mux
}

// recovered answers 503 until startup recovery has completed. Recovery
// is transient, so the refusal carries Retry-After (and X-Accepted: 0 —
// the gate runs before any handler, so nothing was applied).
func (s *server) recovered(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.health.Load() == healthRecovering {
			w.Header().Set("Retry-After", "1")
			w.Header().Set("X-Accepted", "0")
			http.Error(w, "recovering", http.StatusServiceUnavailable)
			return
		}
		h(w, r)
	}
}

// handleHealthz is the load-balancer and router probe: 200 only while
// the server is fully up — recovery done, drain not begun. The JSON
// state lets a router distinguish a recovering node (retry soon, hence
// Retry-After) from a draining one (going away; no Retry-After).
func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	switch s.health.Load() {
	case healthServing:
		writef(w, "{\"state\":\"serving\"}\n")
	case healthRecovering:
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
		writef(w, "{\"state\":\"recovering\"}\n")
	default:
		w.WriteHeader(http.StatusServiceUnavailable)
		writef(w, "{\"state\":\"draining\"}\n")
	}
}

// opCtx derives the pool-operation context for one request: the
// request's own context (cancelled when the client goes away) bounded
// by the configured per-request timeout.
func (s *server) opCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.cfg.reqTimeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), s.cfg.reqTimeout)
}

// failOp translates a pool-operation error to an HTTP status: refused
// work (overload shedding, shutdown) is 503 so load balancers retry
// elsewhere; a blown deadline is 504. Overload sheds carry Retry-After —
// the refusal is transient and the work was provably not applied — while
// a draining server deliberately does not: retrying against a node that
// is going away only slows the client down.
func failOp(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, dsketch.ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, dsketch.ErrClosed):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, context.DeadlineExceeded):
		http.Error(w, "operation deadline exceeded", http.StatusGatewayTimeout)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// writef writes one formatted response line; a false return means the
// client has gone away (the only way an http.ResponseWriter write fails)
// and the handler should stop producing output.
func writef(w io.Writer, format string, args ...any) bool {
	_, err := fmt.Fprintf(w, format, args...)
	return err == nil
}

// parseKey accepts either a decimal uint64 or an arbitrary string (which
// is fingerprinted, matching InsertString/QueryString semantics).
func parseKey(raw string) (uint64, error) {
	if raw == "" {
		return 0, fmt.Errorf("missing key parameter")
	}
	if k, err := strconv.ParseUint(raw, 10, 64); err == nil {
		return k, nil
	}
	return dsketch.Fingerprint(raw), nil
}

func (s *server) handleInsert(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	key, err := parseKey(r.URL.Query().Get("key"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	count := uint64(1)
	if c := r.URL.Query().Get("count"); c != "" {
		count, err = strconv.ParseUint(c, 10, 64)
		if err != nil || count == 0 {
			http.Error(w, "bad count", http.StatusBadRequest)
			return
		}
	}
	ctx, cancel := s.opCtx(r)
	defer cancel()
	if err := s.pool.InsertCountCtx(ctx, key, count); err != nil {
		failOp(w, err)
		return
	}
	// 202 is the durability contract the shutdown test leans on: once a
	// client has seen it, the insertion survives a graceful drain.
	w.WriteHeader(http.StatusAccepted)
}

// maxBatchBytes bounds an /insertbatch request body.
const maxBatchBytes = 8 << 20

// handleInsertBatch ingests a batch of "key [count]" lines (count
// defaults to 1). The whole body is parsed before anything is applied,
// so a 400 provably applied nothing; after that, lines are applied in
// order and every response carries X-Accepted — the length of the
// applied prefix — so a router can account partial failures exactly and
// knows a resend after "X-Accepted: 0" cannot double-count.
func (s *server) handleInsertBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBatchBytes))
	if err != nil {
		http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
		return
	}
	type batchEntry struct{ key, count uint64 }
	var entries []batchEntry
	for ln, line := range strings.Split(string(body), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) > 2 {
			http.Error(w, fmt.Sprintf("line %d: want \"key [count]\", got %q", ln+1, line), http.StatusBadRequest)
			return
		}
		key, err := parseKey(fields[0])
		if err != nil {
			http.Error(w, fmt.Sprintf("line %d: %v", ln+1, err), http.StatusBadRequest)
			return
		}
		count := uint64(1)
		if len(fields) == 2 {
			count, err = strconv.ParseUint(fields[1], 10, 64)
			if err != nil || count == 0 {
				http.Error(w, fmt.Sprintf("line %d: bad count %q", ln+1, fields[1]), http.StatusBadRequest)
				return
			}
		}
		entries = append(entries, batchEntry{key, count})
	}
	if len(entries) == 0 {
		http.Error(w, "empty batch", http.StatusBadRequest)
		return
	}
	ctx, cancel := s.opCtx(r)
	defer cancel()
	for i, e := range entries {
		if err := s.pool.InsertCountCtx(ctx, e.key, e.count); err != nil {
			w.Header().Set("X-Accepted", strconv.Itoa(i))
			failOp(w, err)
			return
		}
	}
	w.Header().Set("X-Accepted", strconv.Itoa(len(entries)))
	// Same durability contract as /insert: once 202 is out, every line
	// of the batch survives a graceful drain.
	w.WriteHeader(http.StatusAccepted)
}

// staleMode reports whether the request opted into the bounded-staleness
// tier, rejecting unknown mode values.
func staleMode(w http.ResponseWriter, r *http.Request) (stale, ok bool) {
	switch r.URL.Query().Get("mode") {
	case "":
		return false, true
	case "stale":
		return true, true
	default:
		http.Error(w, "mode must be stale (or omitted for exact)", http.StatusBadRequest)
		return false, false
	}
}

// stalenessHeaders reports the watermark of a bounded-staleness answer.
// Headers must be set before the first body write.
func stalenessHeaders(w http.ResponseWriter, st dsketch.ViewStaleness) {
	h := w.Header()
	h.Set("X-Staleness-Fresh", strconv.FormatBool(st.Fresh))
	h.Set("X-Staleness-Views", strconv.Itoa(st.Views))
	h.Set("X-Staleness-Lag-Inserts", strconv.FormatUint(st.LagInserts, 10))
	h.Set("X-Staleness-Age", st.Age.String())
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	raws := r.URL.Query()["key"]
	if len(raws) == 0 {
		http.Error(w, "missing key parameter", http.StatusBadRequest)
		return
	}
	stale, ok := staleMode(w, r)
	if !ok {
		return
	}
	keys := make([]uint64, len(raws))
	for i, raw := range raws {
		k, err := parseKey(raw)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		keys[i] = k
	}
	var counts []uint64
	if stale {
		// Published-view path: no worker round-trip, watermark in headers.
		var st dsketch.ViewStaleness
		counts, st = s.pool.QueryStaleBatch(keys)
		stalenessHeaders(w, st)
	} else {
		ctx, cancel := s.opCtx(r)
		defer cancel()
		// A multi-key query is answered by one worker in a single pass.
		var err error
		counts, err = s.pool.QueryBatchCtx(ctx, keys)
		if err != nil {
			failOp(w, err)
			return
		}
	}
	if len(keys) == 1 {
		writef(w, "%d\n", counts[0])
		return
	}
	for i, c := range counts {
		if !writef(w, "%s %d\n", raws[i], c) {
			return
		}
	}
}

func (s *server) handleTopK(w http.ResponseWriter, r *http.Request) {
	if !s.cfg.topk {
		http.Error(w, "server started without -topk", http.StatusNotFound)
		return
	}
	k := 10
	if raw := r.URL.Query().Get("k"); raw != "" {
		if v, err := strconv.Atoi(raw); err == nil && v > 0 {
			k = v
		}
	}
	stale, ok := staleMode(w, r)
	if !ok {
		return
	}
	var hh []dsketch.HeavyHitter
	if stale {
		// Published-view path. A Fresh answer means no views exist yet;
		// fall through to the quiescent snapshot rather than answer empty.
		var st dsketch.ViewStaleness
		if hh, st = s.pool.HeavyHittersStale(k); !st.Fresh {
			stalenessHeaders(w, st)
		} else {
			stale = false
		}
	}
	if !stale {
		// One quiescent pause: flush, snapshot the heavy hitters, resume.
		hh = s.pool.Snapshot(k).HeavyHitters
	}
	for i, e := range hh {
		if !writef(w, "%2d. key=%d count=%d (±%d)\n", i+1, e.Key, e.Count, e.Err) {
			return
		}
	}
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := s.pool.Stats()
	if !writef(w, "drains=%d searches=%d served_queries=%d squashed=%d direct_queries=%d delegated_posts=%d memory_bytes=%d\n",
		st.Drains, st.Searches, st.ServedQueries, st.Squashed, st.DirectQueries,
		st.DelegatedPosts, s.pool.MemoryBytes()) {
		return
	}
	m := s.pool.Metrics()
	if !writef(w, "pool_inserts=%d pool_queries=%d pool_query_keys=%d backpressure=%d quiesces=%d\n",
		m.Inserts, m.Queries, m.QueryKeys, m.Backpressure, m.Quiesces) {
		return
	}
	if !writef(w, "dropped=%d rejected=%d queue_depth=%d worker_panics=%d\n",
		m.Dropped, m.Rejected, m.QueueDepth, m.WorkerPanics) {
		return
	}
	if !writef(w, "batches=%d batch_mean=%.1f batch_max=%d depth_mean=%.1f depth_max=%d\n",
		m.Batches, m.BatchMean, m.BatchMax, m.DepthMean, m.DepthMax) {
		return
	}
	if !writef(w, "enqueue_p50=%v enqueue_p99=%v enqueue_max=%v pause_mean=%v pause_max=%v\n",
		m.EnqueueP50, m.EnqueueP99, m.EnqueueMax, m.PauseMean, m.PauseMax) {
		return
	}
	if !writef(w, "views_published=%d stale_queries=%d stale_fallbacks=%d view_age_p50=%v view_age_p99=%v view_age_max=%v\n",
		m.ViewsPublished, m.StaleQueries, m.StaleFallbacks, m.ViewAgeP50, m.ViewAgeP99, m.ViewAgeMax) {
		return
	}
	vs := s.pool.ViewStaleness()
	if !writef(w, "view_shards=%d view_lag_inserts=%d view_age=%v\n",
		vs.Views, vs.LagInserts, vs.Age) {
		return
	}
	if !writef(w, "uptime_seconds=%.0f\n", time.Since(s.started).Seconds()) {
		return
	}
	line := fmt.Sprintf("checkpoints=%d checkpoint_failures=%d last_checkpoint_gen=%d last_checkpoint_bytes=%d",
		m.Checkpoints, m.CheckpointFailures, m.LastCheckpointGen, m.LastCheckpointBytes)
	if !m.LastCheckpointAt.IsZero() {
		line += fmt.Sprintf(" last_checkpoint_age_seconds=%.0f last_checkpoint_duration=%v",
			time.Since(m.LastCheckpointAt).Seconds(), m.LastCheckpointDuration)
	}
	writef(w, "%s\n", line)
}

// serve runs the HTTP server on ln until ctx is cancelled, then performs
// the graceful sequence: stop accepting and finish in-flight requests
// (http.Server.Shutdown), drain the pool so every accepted insertion is
// flushed into the sketch, and close it. Returns nil on a clean,
// fully-drained exit. Split from main so the end-to-end test can drive
// a real listener through a SIGTERM-style shutdown.
func (s *server) serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{
		Handler:           s.mux(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		// The listener failed before any shutdown was requested; the
		// pool still holds accepted insertions, so drain it anyway.
		s.pool.Close()
		s.closeTransfer()
		return err
	case <-ctx.Done():
	}
	s.health.Store(healthDraining) // healthz flips to 503 before the listener closes
	shCtx, cancel := context.WithTimeout(context.Background(), s.cfg.drainTimeout)
	defer cancel()
	err := srv.Shutdown(shCtx) // stop accepting, wait out in-flight requests
	if derr := s.pool.Drain(shCtx); err == nil {
		err = derr
	}
	s.pool.Close() // wait out any background drain; idempotent when clean
	s.closeTransfer()
	<-errc // Serve has returned http.ErrServerClosed by now
	return err
}

// closeTransfer discards any live staging lane; its counts are refused
// entries or duplicates the donor still serves, so dropping them on
// shutdown loses nothing.
func (s *server) closeTransfer() {
	if s.xfer != nil {
		s.xfer.Close()
	}
}

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		threads = flag.Int("threads", runtime.NumCPU(), "sketch worker threads")
		width   = flag.Int("width", 4096, "sketch buckets per row")
		depth   = flag.Int("depth", 8, "sketch rows")
		topk    = flag.Bool("topk", false, "enable the /topk endpoint")
		batch   = flag.Int("batch", 256, "max insertions drained per chunk")
		queue   = flag.Int("queue", 4096, "per-shard ingest buffer capacity")
		policy  = flag.String("policy", "block",
			"full-buffer policy: block (backpressure) or shed (reject with 503)")
		idle = flag.Duration("idlehelp", 100*time.Microsecond,
			"idle worker helping period (0 busy-polls: lower latency, one core per idle worker)")
		reqTimeout = flag.Duration("reqtimeout", 2*time.Second,
			"per-request pool operation deadline (0 disables)")
		drainTimeout = flag.Duration("draintimeout", 10*time.Second,
			"bound on the graceful shutdown drain")
		viewInterval = flag.Duration("viewinterval", 100*time.Millisecond,
			"snapshot-view publication period for mode=stale reads")
		noViews = flag.Bool("noviews", false,
			"disable snapshot views (mode=stale then answers via the exact path)")
		ckptDir = flag.String("checkpoint-dir", "",
			"directory for atomic sketch checkpoints (empty disables durability)")
		ckptInterval = flag.Duration("checkpoint-interval", time.Minute,
			"background checkpoint period (requires -checkpoint-dir)")
		ckptKeep = flag.Int("checkpoint-keep", 2,
			"checkpoint generations to retain (requires -checkpoint-dir)")
		transferRate = flag.Int64("transfer-rate", 0,
			"rebalance /checkpoint/export rate bound in bytes/sec (0 = unlimited)")
	)
	flag.Parse()

	cfg := config{
		threads:      *threads,
		width:        *width,
		depth:        *depth,
		topk:         *topk,
		batch:        *batch,
		queue:        *queue,
		policy:       *policy,
		idleHelp:     *idle,
		reqTimeout:   *reqTimeout,
		drainTimeout: *drainTimeout,
		viewInterval: *viewInterval,
		noViews:      *noViews,
		ckptDir:      *ckptDir,
		transferRate: *transferRate,
	}
	if *ckptDir != "" {
		// Only carry the dependent knobs when durability is on, so their
		// defaults do not trip the require-dir validation.
		cfg.ckptInterval = *ckptInterval
		cfg.ckptKeep = *ckptKeep
	} else {
		// Explicitly setting a dependent knob without the dir is a
		// misconfiguration, not something to ignore silently.
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "checkpoint-interval" || f.Name == "checkpoint-keep" {
				log.Fatalf("dsserve: -%s requires -checkpoint-dir", f.Name)
			}
		})
	}
	s, err := newServer(cfg)
	if err != nil {
		log.Fatal(err)
	}
	switch {
	case s.restored != nil:
		log.Printf("dsserve: recovered checkpoint generation %d from %s (%d damaged files skipped)",
			s.restored.Gen, s.restored.Path, len(s.restored.SkippedFiles))
	case cfg.ckptDir != "":
		log.Printf("dsserve: no checkpoint in %s, cold start", cfg.ckptDir)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("dsserve: %d threads, %d bytes of sketch, listening on %s",
		s.pool.Threads(), s.pool.MemoryBytes(), ln.Addr())
	if err := s.serve(ctx, ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	log.Printf("dsserve: drained and exiting")
}
