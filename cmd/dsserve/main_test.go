package main

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dsketch"
	"dsketch/internal/testutil"
)

func testConfig() config {
	return config{
		threads:      2,
		width:        4096,
		depth:        8,
		batch:        64,
		queue:        1024,
		idleHelp:     100 * time.Microsecond,
		reqTimeout:   2 * time.Second,
		drainTimeout: 10 * time.Second,
	}
}

func TestNewServerRejectsBadPolicy(t *testing.T) {
	cfg := testConfig()
	cfg.policy = "panic-and-pray"
	if _, err := newServer(cfg); err == nil || !strings.Contains(err.Error(), "policy") {
		t.Fatalf("newServer(bad policy) err = %v, want policy error", err)
	}
}

func TestHandlersRoundTrip(t *testing.T) {
	s, err := newServer(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.pool.Close()
	mux := s.mux()

	post := func(url string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, url, nil))
		return rec
	}
	get := func(url string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
		return rec
	}

	if rec := post("/insert?key=7&count=5"); rec.Code != http.StatusAccepted {
		t.Fatalf("insert status = %d, want 202", rec.Code)
	}
	rec := get("/query?key=7")
	if rec.Code != http.StatusOK || strings.TrimSpace(rec.Body.String()) != "5" {
		t.Fatalf("query = %d %q, want 200 \"5\"", rec.Code, rec.Body.String())
	}
	rec = get("/stats")
	for _, frag := range []string{"dropped=", "rejected=", "queue_depth=", "worker_panics="} {
		if !strings.Contains(rec.Body.String(), frag) {
			t.Fatalf("/stats missing %q:\n%s", frag, rec.Body.String())
		}
	}
}

// TestGracefulShutdownKeepsAcceptedInserts is the SIGTERM end-to-end
// test: real listener, concurrent HTTP producers, shutdown triggered
// mid-traffic. Every insertion the server answered 202 for must be
// queryable after serve returns — the drain may not lose updates
// accepted before (or during) the shutdown.
func TestGracefulShutdownKeepsAcceptedInserts(t *testing.T) {
	s, err := newServer(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// ctx cancellation stands in for the SIGTERM that
	// signal.NotifyContext translates in main.
	ctx, cancel := context.WithCancel(context.Background())
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.serve(ctx, ln) }()

	base := "http://" + ln.Addr().String()
	keys := []uint64{101, 202, 303, 404}
	accepted := make([]atomic.Uint64, len(keys))
	var total atomic.Uint64

	const producers = 4
	var wg sync.WaitGroup
	for g := 0; g < producers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			client := &http.Client{}
			for i := 0; i < 3000; i++ {
				ki := (g + i) % len(keys)
				resp, err := client.Post(
					fmt.Sprintf("%s/insert?key=%d", base, keys[ki]), "", nil)
				if err != nil {
					return // listener closed under us: shutdown reached
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				_ = resp.Body.Close()
				if resp.StatusCode != http.StatusAccepted {
					return // 503: the pool refused, shutdown reached
				}
				accepted[ki].Add(1)
				total.Add(1)
			}
		}(g)
	}

	// Let real traffic land, then pull the plug mid-stream.
	testutil.WaitUntil(t, 10*time.Second, func() bool { return total.Load() >= 500 })
	cancel()
	wg.Wait()
	if err := <-serveErr; err != nil {
		t.Fatalf("serve returned %v, want nil (clean drain)", err)
	}

	// The listener is gone but the handlers still answer (the pool
	// serves queries quiescently after Close); verify through the same
	// HTTP surface clients used. Two-sided check: every 202 the client
	// saw must be queryable (per-key lower bound — a request can land
	// server-side while shutdown eats the client's response, so exact
	// equality is unknowable from the client), and the server-side
	// accepted-op counter must equal the queried total exactly (the
	// drain lost nothing and double-counted nothing).
	mux := s.mux()
	var queriedTotal uint64
	for i, k := range keys {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(
			http.MethodGet, fmt.Sprintf("/query?key=%d", k), nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("post-shutdown query status = %d", rec.Code)
		}
		got, err := strconv.ParseUint(strings.TrimSpace(rec.Body.String()), 10, 64)
		if err != nil {
			t.Fatalf("post-shutdown query body %q: %v", rec.Body.String(), err)
		}
		if want := accepted[i].Load(); got < want {
			t.Fatalf("key %d: query = %d after drain, want at least the %d 202-accepted insertions",
				k, got, want)
		}
		queriedTotal += got
	}
	if m := s.pool.Metrics(); queriedTotal != m.Inserts {
		t.Fatalf("queried total %d != %d pool-accepted inserts: the drain lost or duplicated updates",
			queriedTotal, m.Inserts)
	}

	// And post-shutdown insertions are refused with 503, not lost silently.
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/insert?key=101", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown insert status = %d, want 503", rec.Code)
	}
}

// TestStaleModeRoundTrip drives the mode=stale tier end to end: stale
// queries converge on the inserted counts with watermark headers, an
// unknown mode is rejected, /topk?mode=stale answers from views once
// they carry entries, and /stats reports the view counters.
func TestStaleModeRoundTrip(t *testing.T) {
	cfg := testConfig()
	cfg.topk = true
	cfg.viewInterval = 5 * time.Millisecond
	s, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.pool.Close()
	mux := s.mux()
	get := func(url string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
		return rec
	}

	// Enough distinct keys that the delegation filters drain (feeding
	// the heavy-hitter trackers), plus a hot key for /topk to find.
	for i := 0; i < 400; i++ {
		url := fmt.Sprintf("/insert?key=%d", 5000+i)
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, url, nil))
		if rec.Code != http.StatusAccepted {
			t.Fatalf("insert status = %d, want 202", rec.Code)
		}
	}
	for i := 0; i < 50; i++ {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/insert?key=9&count=2", nil))
		if rec.Code != http.StatusAccepted {
			t.Fatalf("insert status = %d, want 202", rec.Code)
		}
	}

	if rec := get("/query?key=9&mode=exactly"); rec.Code != http.StatusBadRequest {
		t.Fatalf("unknown mode status = %d, want 400", rec.Code)
	}

	// Stale reads converge on the full count once views republish.
	testutil.WaitUntil(t, 10*time.Second, func() bool {
		rec := get("/query?key=9&mode=stale")
		return rec.Code == http.StatusOK &&
			strings.TrimSpace(rec.Body.String()) == "100" &&
			rec.Header().Get("X-Staleness-Fresh") == "false"
	})
	rec := get("/query?key=9&key=5000&mode=stale")
	if rec.Code != http.StatusOK {
		t.Fatalf("stale batch query status = %d", rec.Code)
	}
	for _, h := range []string{"X-Staleness-Fresh", "X-Staleness-Views", "X-Staleness-Lag-Inserts", "X-Staleness-Age"} {
		if rec.Header().Get(h) == "" {
			t.Fatalf("stale query missing %s header", h)
		}
	}
	if lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n"); len(lines) != 2 {
		t.Fatalf("stale batch body = %q, want 2 lines", rec.Body.String())
	}

	testutil.WaitUntil(t, 10*time.Second, func() bool {
		rec := get("/topk?k=3&mode=stale")
		return rec.Code == http.StatusOK &&
			strings.Contains(rec.Body.String(), "key=9") &&
			rec.Header().Get("X-Staleness-Fresh") == "false"
	})

	rec = get("/stats")
	for _, frag := range []string{"views_published=", "stale_queries=", "stale_fallbacks=", "view_age_p50=", "view_shards=", "view_lag_inserts="} {
		if !strings.Contains(rec.Body.String(), frag) {
			t.Fatalf("/stats missing %q:\n%s", frag, rec.Body.String())
		}
	}
}

// TestStaleModeWithViewsDisabled checks -noviews degrades to the exact
// path: correct counts, Fresh watermark, and /topk falls back to the
// quiescent snapshot (no staleness headers).
func TestStaleModeWithViewsDisabled(t *testing.T) {
	cfg := testConfig()
	cfg.topk = true
	cfg.noViews = true
	s, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.pool.Close()
	mux := s.mux()
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/insert?key=4&count=6", nil))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("insert status = %d, want 202", rec.Code)
	}
	testutil.WaitUntil(t, 10*time.Second, func() bool {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/query?key=4&mode=stale", nil))
		return rec.Code == http.StatusOK && strings.TrimSpace(rec.Body.String()) == "6"
	})
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/query?key=4&mode=stale", nil))
	if got := rec.Header().Get("X-Staleness-Fresh"); got != "true" {
		t.Fatalf("X-Staleness-Fresh = %q, want true (exact fallback)", got)
	}
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/topk?mode=stale", nil))
	if rec.Code != http.StatusOK || rec.Header().Get("X-Staleness-Fresh") != "" {
		t.Fatalf("topk fallback = %d (fresh header %q), want quiescent snapshot without staleness headers",
			rec.Code, rec.Header().Get("X-Staleness-Fresh"))
	}
}

// TestInsertBatchRoundTrip pins the batch contract the router leans on:
// a clean batch answers 202 with X-Accepted equal to the number of
// lines (blank lines skipped, counts defaulting to 1), and the
// aggregate lands in the sketch.
func TestInsertBatchRoundTrip(t *testing.T) {
	s, err := newServer(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.pool.Close()
	mux := s.mux()

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/insertbatch",
		strings.NewReader("7 3\n\n8\n7 2\n")))
	if rec.Code != http.StatusAccepted || rec.Header().Get("X-Accepted") != "3" {
		t.Fatalf("batch = %d X-Accepted=%q, want 202/3", rec.Code, rec.Header().Get("X-Accepted"))
	}
	// 202 means accepted, not yet applied: lines can still sit in the
	// ingestion queue, so poll until the full batch is visible.
	for key, want := range map[string]string{"7": "5", "8": "1"} {
		var code int
		var body string
		testutil.WaitUntil(t, 10*time.Second, func() bool {
			rec = httptest.NewRecorder()
			mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/query?key="+key, nil))
			code, body = rec.Code, strings.TrimSpace(rec.Body.String())
			return code == http.StatusOK && body == want
		})
		if code != http.StatusOK || body != want {
			t.Fatalf("query key %s = %d %q, want 200 %q", key, code, body, want)
		}
	}
}

// TestInsertBatchParseAllBeforeApply pins that a malformed line rejects
// the whole batch with 400 before anything is applied — a 400 provably
// applied nothing, so the sender may rebuild and resend without
// double-counting.
func TestInsertBatchParseAllBeforeApply(t *testing.T) {
	s, err := newServer(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.pool.Close()
	mux := s.mux()

	for _, body := range []string{
		"1 1\n2 zero\n",    // bad count after a good line
		"1 1\n2 3 extra\n", // too many fields
		"1 0\n",            // zero count
		"",                 // empty batch
	} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/insertbatch", strings.NewReader(body)))
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("batch %q = %d, want 400", body, rec.Code)
		}
	}
	// Key 1 appeared on the good line of every rejected batch; none of
	// it may have landed.
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/query?key=1", nil))
	if rec.Code != http.StatusOK || strings.TrimSpace(rec.Body.String()) != "0" {
		t.Fatalf("query after rejected batches = %d %q, want 200 \"0\"", rec.Code, rec.Body.String())
	}
	if got := s.pool.Metrics().Inserts; got != 0 {
		t.Fatalf("pool applied %d inserts from rejected batches, want 0", got)
	}
}

// TestInsertBatchClosedPool pins the draining refusal shape: a batch
// against a closed pool answers 503 with X-Accepted: 0 and — because a
// draining node must not invite retries — no Retry-After.
func TestInsertBatchClosedPool(t *testing.T) {
	s, err := newServer(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.pool.Close()
	rec := httptest.NewRecorder()
	s.mux().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/insertbatch", strings.NewReader("1 1\n")))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("batch on closed pool = %d, want 503", rec.Code)
	}
	if got := rec.Header().Get("X-Accepted"); got != "0" {
		t.Fatalf("X-Accepted = %q, want 0", got)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "" {
		t.Fatalf("closed-pool refusal carries Retry-After %q; draining must not invite retries", ra)
	}
}

// TestFailOpStatusShapes pins failOp's error-to-HTTP translation table,
// which the router's retry-safety classification depends on.
func TestFailOpStatusShapes(t *testing.T) {
	cases := []struct {
		err        error
		status     int
		retryAfter bool
	}{
		{dsketch.ErrOverloaded, http.StatusServiceUnavailable, true},
		{dsketch.ErrClosed, http.StatusServiceUnavailable, false},
		{context.DeadlineExceeded, http.StatusGatewayTimeout, false},
		{fmt.Errorf("wrapped: %w", dsketch.ErrOverloaded), http.StatusServiceUnavailable, true},
	}
	for _, c := range cases {
		rec := httptest.NewRecorder()
		failOp(rec, c.err)
		if rec.Code != c.status {
			t.Fatalf("failOp(%v) = %d, want %d", c.err, rec.Code, c.status)
		}
		if got := rec.Header().Get("Retry-After") != ""; got != c.retryAfter {
			t.Fatalf("failOp(%v) Retry-After present = %v, want %v", c.err, got, c.retryAfter)
		}
	}
}

// TestHealthzStates pins the JSON healthz contract the router's probe
// parses: the state string, the status code, and Retry-After only on
// the transient (recovering) refusal.
func TestHealthzStates(t *testing.T) {
	s, err := newServer(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.pool.Close()
	mux := s.mux()

	probe := func() *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
		return rec
	}
	type expect struct {
		state      int32
		code       int
		body       string
		retryAfter bool
	}
	for _, e := range []expect{
		{healthServing, http.StatusOK, `{"state":"serving"}`, false},
		{healthRecovering, http.StatusServiceUnavailable, `{"state":"recovering"}`, true},
		{healthDraining, http.StatusServiceUnavailable, `{"state":"draining"}`, false},
	} {
		s.health.Store(e.state)
		rec := probe()
		if rec.Code != e.code || strings.TrimSpace(rec.Body.String()) != e.body {
			t.Fatalf("healthz in state %d = %d %q, want %d %q",
				e.state, rec.Code, rec.Body.String(), e.code, e.body)
		}
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Fatalf("healthz Content-Type = %q, want application/json", ct)
		}
		if got := rec.Header().Get("Retry-After") != ""; got != e.retryAfter {
			t.Fatalf("healthz in state %d: Retry-After present = %v, want %v", e.state, got, e.retryAfter)
		}
	}
}
