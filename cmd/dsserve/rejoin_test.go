package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dsketch/internal/router"
	"dsketch/internal/testutil"
)

// TestRecoveringNodeReadmissionWaitsForRestore pins the rejoin
// contract for a restarted node: while checkpoint recovery is in
// flight the node advertises "recovering", admits no inserts and no
// new checkpoint takes, and a router probing it must NOT readmit it —
// no matter how many ReadyM windows pass. Only /checkpoint/export is
// live early, so a donor restarting mid-handoff can keep serving the
// generation an interrupted copy needs to resume. When the restore
// finishes the node flips to serving, the router readmits it, and it
// answers with its pre-crash counts.
//
// The restore is held open with the server's restoreBarrier seam, so
// the test observes the recovering window itself instead of racing a
// fast restore.
func TestRecoveringNodeReadmissionWaitsForRestore(t *testing.T) {
	dir := t.TempDir()

	// A first life: load one key, checkpoint, crash (abandon the pool —
	// nothing after the checkpoint survives).
	s1, err := newServer(ckptConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	s1.mux().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/insert?key=7&count=42", nil))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("insert: status %d", rec.Code)
	}
	// Take through the transfer plane, as the rebalance coordinator
	// would: a take also snapshots the generation's provenance bundle,
	// which the coordinator pulls alongside the checkpoint.
	rec = httptest.NewRecorder()
	s1.mux().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/checkpoint/take", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("take: status %d body %q", rec.Code, rec.Body.String())
	}
	var info struct {
		Gen uint64 `json:"gen"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}

	// The second life, with recovery held open at the barrier.
	s2, err := prepServer(ckptConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	s2.restoreBarrier = make(chan struct{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: s2.mux()}
	go func() {
		if err := srv.Serve(ln); err != http.ErrServerClosed {
			t.Logf("serve: %v", err)
		}
	}()
	defer func() { _ = srv.Close() }()
	base := "http://" + ln.Addr().String()

	openErr := make(chan error, 1)
	go func() { openErr <- s2.open() }()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	// Recovering: healthz says so, and the write plane is shut.
	if code, body := get("/healthz"); code != http.StatusServiceUnavailable ||
		!strings.Contains(body, "recovering") {
		t.Fatalf("healthz mid-restore = %d %q, want 503 recovering", code, body)
	}
	resp, err := http.Post(base+"/insert?key=1", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("X-Accepted") != "0" {
		t.Fatalf("insert mid-restore = %d X-Accepted=%q, want 503/0",
			resp.StatusCode, resp.Header.Get("X-Accepted"))
	}
	resp, err = http.Post(base+"/checkpoint/take", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("checkpoint take mid-restore = %d, want 503", resp.StatusCode)
	}
	// ...but the pre-crash generation exports as soon as the transfer
	// plane exists, so an interrupted rebalance copy can resume against
	// a still-recovering donor.
	exportPath := fmt.Sprintf("/checkpoint/export?gen=%d&offset=0&limit=1024", info.Gen)
	testutil.WaitUntil(t, 5*time.Second, func() bool {
		code, _ := get(exportPath)
		return code == http.StatusOK
	})
	// The generation's provenance bundle must be reachable through the
	// daemon's outer mux too — the coordinator pulls both or restarts
	// the move forever. (The handler's own 404 says "pruned or unknown";
	// a mux-level 404 would say "page not found".)
	if code, body := get(fmt.Sprintf("/checkpoint/provenance?gen=%d", info.Gen)); code != http.StatusOK {
		t.Fatalf("provenance for gen %d through dsserve mux = %d %q, want 200", info.Gen, code, body)
	}

	// A router probing this node ejects it and must hold it out for as
	// long as recovery lasts — readmission must not race the restore.
	rt, err := router.New(router.Config{
		Nodes: []string{base},
		Health: router.HealthConfig{
			Interval: 5 * time.Millisecond,
			Timeout:  time.Second,
			FailK:    2,
			ReadyM:   2,
			Seed:     1,
		},
		Retry: router.RetryConfig{Seed: 1},
		Logf:  t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := rt.Close(ctx); err != nil {
			t.Logf("router close: %v", err)
		}
	}()
	node := rt.Members()[0]
	testutil.WaitUntil(t, 5*time.Second, func() bool { return !rt.NodeUp(node) })
	// ~20 ReadyM windows of sustained "recovering": still out. This is
	// a negative assertion — there is no state change to block on; the
	// sleep gives the readmission bug it guards against ample rounds to
	// manifest.
	//lint:ignore sleepysync negative assertion: waiting out probe rounds to prove readmission does NOT happen
	time.Sleep(100 * time.Millisecond)
	if rt.NodeUp(node) {
		t.Fatal("router readmitted a node that is still recovering")
	}

	// Let the restore finish: the node flips to serving, the router
	// readmits it, and the pre-crash count is there.
	close(s2.restoreBarrier)
	if err := <-openErr; err != nil {
		t.Fatalf("open: %v", err)
	}
	defer s2.pool.Close()
	if s2.restored == nil || s2.restored.Gen != info.Gen {
		t.Fatalf("restored = %+v, want generation %d", s2.restored, info.Gen)
	}
	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, "serving") {
		t.Fatalf("healthz after restore = %d %q, want 200 serving", code, body)
	}
	testutil.WaitUntil(t, 5*time.Second, func() bool { return rt.NodeUp(node) })
	if code, body := get("/query?key=7"); code != http.StatusOK || strings.TrimSpace(body) != "42" {
		t.Fatalf("query after rejoin = %d %q, want the pre-crash 42", code, body)
	}
}
