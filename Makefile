GO ?= go

.PHONY: check vet build test race bench

## check: everything CI runs — vet, build, tests, and the -race stress
## suites for the concurrency-critical packages.
check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/pool ./internal/delegation

bench:
	$(GO) test -run='^$$' -bench=. -benchmem .
