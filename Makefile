GO ?= go

.PHONY: check ci vet build test race chaos fuzz lint dslint bench microbench

## check: everything CI runs — vet, build, tests, static analysis, the
## -race stress suites for the concurrency-critical packages, and the
## decoder fuzz seed corpora.
check: vet build test lint race fuzz

## ci: the full gate ci.sh runs, as one target.
ci:
	./ci.sh

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -shuffle=on -timeout=5m ./...

race:
	$(GO) test -race -shuffle=on -timeout=5m ./internal/pool ./internal/delegation ./internal/spsc ./internal/filter ./internal/persist ./internal/sketch ./internal/metrics ./internal/router

## chaos: the fault-injection suites under -race — injected delays,
## lost wakeups, worker panics, overload shedding, torn checkpoint
## writes at every cut point, killed cluster nodes, and live-membership
## rebalances (TestChaosRebalance*) with the donor killed mid-handoff;
## graceful drains must account every accepted insertion exactly,
## recovery must never lose a checkpointed count, and the router must
## never lose or double-apply an accepted insert across a node kill or
## a membership change.
chaos:
	$(GO) test -race -count=1 -timeout=5m -run '^TestChaos' ./internal/pool ./internal/delegation ./internal/persist ./internal/router

## fuzz: execute the decoder fuzz targets over their seed corpora
## (deterministic; use 'go test -fuzz' manually for open-ended runs).
fuzz:
	$(GO) test -count=1 -timeout=5m -run '^Fuzz' ./internal/sketch ./internal/persist

## lint: go vet plus the repository's own concurrency-invariant
## analyzers (cmd/dslint). Fails on any unsuppressed diagnostic.
lint: vet dslint

dslint:
	$(GO) run ./cmd/dslint ./...

## bench: the dsbench perf smokes — emit each perf trajectory in the
## quick configuration and re-validate it. Bench 6 is the insert-only
## ingestion sweep (1→8 shard scaling >= 3x); bench 7 is the pause-free
## read path (90/10 mixed workload retention, zero quiesce pauses on the
## view arm, accuracy-vs-staleness bound).
bench:
	$(GO) run ./cmd/dsbench -bench 6 -quick
	$(GO) run ./cmd/dsbench -check results/BENCH_6.json
	$(GO) run ./cmd/dsbench -bench 7 -quick
	$(GO) run ./cmd/dsbench -check results/BENCH_7.json

## microbench: the go-test micro-benchmarks (hot paths, ablations,
## mutex-lane vs SPSC-lane pool ingestion).
microbench:
	$(GO) test -run='^$$' -bench=. -benchmem .
