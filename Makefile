GO ?= go

.PHONY: check ci vet build test race lint dslint bench

## check: everything CI runs — vet, build, tests, static analysis, and
## the -race stress suites for the concurrency-critical packages.
check: vet build test lint race

## ci: the full gate ci.sh runs, as one target.
ci:
	./ci.sh

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/pool ./internal/delegation ./internal/spsc ./internal/filter

## lint: go vet plus the repository's own concurrency-invariant
## analyzers (cmd/dslint). Fails on any unsuppressed diagnostic.
lint: vet dslint

dslint:
	$(GO) run ./cmd/dslint ./...

bench:
	$(GO) test -run='^$$' -bench=. -benchmem .
