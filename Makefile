GO ?= go

.PHONY: check ci vet build test race chaos lint dslint bench

## check: everything CI runs — vet, build, tests, static analysis, and
## the -race stress suites for the concurrency-critical packages.
check: vet build test lint race

## ci: the full gate ci.sh runs, as one target.
ci:
	./ci.sh

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -shuffle=on -timeout=5m ./...

race:
	$(GO) test -race -shuffle=on -timeout=5m ./internal/pool ./internal/delegation ./internal/spsc ./internal/filter

## chaos: the fault-injection suites under -race — injected delays,
## lost wakeups, worker panics, and overload shedding, each ending in a
## graceful drain that must account every accepted insertion exactly.
chaos:
	$(GO) test -race -count=1 -timeout=5m -run '^TestChaos' ./internal/pool ./internal/delegation

## lint: go vet plus the repository's own concurrency-invariant
## analyzers (cmd/dslint). Fails on any unsuppressed diagnostic.
lint: vet dslint

dslint:
	$(GO) run ./cmd/dslint ./...

bench:
	$(GO) test -run='^$$' -bench=. -benchmem .
