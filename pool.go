package dsketch

import (
	"time"

	"dsketch/internal/hash"
	"dsketch/internal/pool"
)

// Pool is the serving front-end: a Sketch plus the worker goroutines
// that drive it, behind a goroutine-safe API. Use it when insertions
// and queries arrive on arbitrary goroutines (HTTP handlers, RPC
// servers, pipeline stages) instead of the one-goroutine-per-Handle
// model the core protocol requires.
//
// Ingestion is batched: Insert appends to a per-shard buffer under a
// short critical section, and the shard's worker drains whole chunks
// into the delegation filters, amortizing hand-off overhead that a
// channel send per key would pay. Queries are delegated to a worker and
// answered through the protocol's pending array, so concurrent hot-key
// queries benefit from squashing.
//
// Consistency: an insertion becomes visible to queries when its worker
// drains it — normally within microseconds, since workers are woken as
// soon as a buffer goes non-empty — and Quiesce, Snapshot and Close are
// barriers after which every completed insertion is visible. Under the
// hood each worker obeys the paper's cooperative protocol, so delegated
// work keeps flowing even while the pool is otherwise idle.
type Pool struct {
	s *Sketch
	p *pool.Pool
}

// PoolConfig assembles a Pool: the embedded Config sizes the sketch
// (Config.Threads is also the number of workers and ingest shards), and
// the pool fields tune the serving layer. Zero values select defaults.
type PoolConfig struct {
	Config

	// BatchSize caps how many buffered insertions a worker feeds to the
	// sketch per chunk (default 256). Smaller values bound the latency
	// of queries queued behind a drain; larger values amortize better.
	BatchSize int
	// QueueCapacity caps each shard's ingest buffer, in insertions
	// (default 4096). Producers back off when their shard is full, so
	// memory stays bounded under overload.
	QueueCapacity int
	// IdleHelp selects idle-worker behavior: 0 (default) busy-polls —
	// lowest latency, one spinning core per idle worker — while a
	// positive duration makes idle workers sleep and help only every
	// IdleHelp (use ~100µs for long-running daemons).
	IdleHelp time.Duration
}

// NewPool builds the Sketch described by cfg.Config and starts
// cfg.Threads worker goroutines over it. Call Close to release them.
func NewPool(cfg PoolConfig) *Pool {
	s := New(cfg.Config)
	return &Pool{
		s: s,
		p: pool.New(s.ds, pool.Options{
			BatchSize:     cfg.BatchSize,
			QueueCapacity: cfg.QueueCapacity,
			IdleHelp:      cfg.IdleHelp,
		}),
	}
}

// Threads returns the number of workers (= sketch threads = shards).
func (p *Pool) Threads() int { return p.p.Threads() }

// Insert records one occurrence of key. Goroutine-safe.
func (p *Pool) Insert(key uint64) { p.p.Insert(key) }

// InsertCount records count occurrences of key (a zero count is a
// no-op). Goroutine-safe.
func (p *Pool) InsertCount(key uint64, count uint64) { p.p.InsertCount(key, count) }

// InsertString records one occurrence of a string key (fingerprinted to
// 64 bits; use the same form consistently for inserts and queries).
func (p *Pool) InsertString(key string) { p.p.Insert(hash.FingerprintString(key)) }

// Query estimates key's frequency. Goroutine-safe; see Pool's
// consistency note.
func (p *Pool) Query(key uint64) uint64 { return p.p.Query(key) }

// QueryString estimates a string key's frequency.
func (p *Pool) QueryString(key string) uint64 {
	return p.p.Query(hash.FingerprintString(key))
}

// QueryBatch estimates each key's frequency in one round trip to a
// worker: the per-request hand-off is paid once for the whole batch,
// and results come back positionally.
func (p *Pool) QueryBatch(keys []uint64) []uint64 {
	return p.p.QueryBatch(keys, nil)
}

// Quiesce pauses the pool — every worker parks at a two-phase barrier
// after draining its ingest buffer — runs fn on the quiescent Sketch,
// and resumes. Inside fn every completed insertion is visible and the
// quiescent-only Sketch operations (Flush, HeavyHitters, Query) are
// safe. Insertions and queries issued during the pause are buffered and
// served after resume. Quiesce calls serialize with each other.
func (p *Pool) Quiesce(fn func(s *Sketch)) {
	p.p.Quiesce(func() { fn(p.s) })
}

// PoolSnapshot is a consistent view captured in a single pause.
type PoolSnapshot struct {
	// HeavyHitters holds the top-k report when Config.TrackHeavyHitters
	// is set (nil otherwise).
	HeavyHitters []HeavyHitter
	// Stats are the sketch's cumulative event counters.
	Stats Stats
	// MemoryBytes is the sketch footprint (see Sketch.MemoryBytes).
	MemoryBytes int
	// Metrics are the pool's serving metrics (taken with the same
	// snapshot, though they are safe to read at any time).
	Metrics PoolMetrics
}

// Snapshot flushes the sketch and captures heavy hitters (when tracked),
// stats and metrics in one quiescent pause, then resumes serving. k
// bounds the heavy-hitter report size.
func (p *Pool) Snapshot(k int) PoolSnapshot {
	var snap PoolSnapshot
	p.Quiesce(func(s *Sketch) {
		s.Flush()
		// Empty unless Config.TrackHeavyHitters was set.
		if hh := s.HeavyHitters(k); len(hh) > 0 {
			snap.HeavyHitters = hh
		}
		snap.Stats = s.Stats()
		snap.MemoryBytes = s.MemoryBytes()
	})
	snap.Metrics = p.Metrics()
	return snap
}

// Stats returns the sketch's cumulative event counters. Safe at any
// time (counters are monotone and read atomically).
func (p *Pool) Stats() Stats { return p.s.Stats() }

// MemoryBytes reports the sketch footprint. The pool's own buffers add
// 16 bytes per queued insertion on top, bounded by
// Threads × QueueCapacity.
func (p *Pool) MemoryBytes() int { return p.s.MemoryBytes() }

// PoolMetrics summarizes the serving layer's self-measurements.
type PoolMetrics struct {
	// Inserts is the number of accepted insert operations; Queries the
	// number of query requests (a QueryBatch is one request), QueryKeys
	// the number of individual keys answered.
	Inserts, Queries, QueryKeys uint64
	// Backpressure counts producer backoffs on a full shard buffer.
	Backpressure uint64
	// Quiesces counts completed quiescent pauses (incl. Snapshots).
	Quiesces uint64
	// Batches counts chunks drained into the sketch; BatchMean/BatchMax
	// describe the chunk sizes, and DepthMean/DepthMax the shard buffer
	// length each drain encountered.
	Batches   uint64
	BatchMean float64
	BatchMax  uint64
	DepthMean float64
	DepthMax  uint64
	// EnqueueP50/P99/Max describe the producer-side cost of handing an
	// insertion to the pool (sampled 1 in 32).
	EnqueueP50, EnqueueP99, EnqueueMax time.Duration
	// PauseMean/PauseMax describe full Quiesce pauses (barrier + fn).
	PauseMean, PauseMax time.Duration
}

// Metrics returns a snapshot of the pool's serving metrics.
func (p *Pool) Metrics() PoolMetrics {
	m := p.p.Metrics()
	return PoolMetrics{
		Inserts:      m.Inserts,
		Queries:      m.Queries,
		QueryKeys:    m.QueryKeys,
		Backpressure: m.Backpressure,
		Quiesces:     m.Quiesces,
		Batches:      m.Batches.Count(),
		BatchMean:    m.Batches.MeanValue(),
		BatchMax:     m.Batches.MaxValue(),
		DepthMean:    m.Depths.MeanValue(),
		DepthMax:     m.Depths.MaxValue(),
		EnqueueP50:   m.Enqueue.Percentile(50),
		EnqueueP99:   m.Enqueue.Percentile(99),
		EnqueueMax:   m.Enqueue.Max(),
		PauseMean:    m.Pauses.Mean(),
		PauseMax:     m.Pauses.Max(),
	}
}

// Close stops the workers after draining every buffered insertion and
// flushing the delegation filters, leaving the sketch quiescent: Query
// and QueryBatch keep working (answered directly), and Sketch() may be
// used for quiescent-only reporting. Stop producers before calling
// Close — an Insert racing Close may be dropped. Idempotent.
func (p *Pool) Close() { p.p.Close() }

// Sketch returns the underlying Sketch. Its quiescent-only operations
// (Flush, HeavyHitters, Sketch.Query) are safe only inside Quiesce or
// after Close; Stats and MemoryBytes are safe at any time.
func (p *Pool) Sketch() *Sketch { return p.s }
