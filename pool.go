package dsketch

import (
	"context"
	"fmt"
	"time"

	"dsketch/internal/hash"
	"dsketch/internal/pool"
)

// Errors returned by the context-aware and load-shedding Pool paths.
var (
	// ErrClosed reports an operation against a closed (or draining)
	// Pool; the insertion or query had no effect.
	ErrClosed = pool.ErrClosed
	// ErrOverloaded reports an insertion shed because the shard's ingest
	// buffer was full and the Pool uses OverloadShed.
	ErrOverloaded = pool.ErrOverloaded
)

// OverloadPolicy selects what Pool ingestion does when a shard's buffer
// is full.
type OverloadPolicy int

const (
	// OverloadBlock (the default) backs the producer off until the
	// worker catches up; InsertCtx bounds the wait with a deadline.
	OverloadBlock OverloadPolicy = iota
	// OverloadShed rejects the insertion immediately with ErrOverloaded
	// (counted in PoolMetrics.Rejected), keeping producer latency
	// bounded under sustained overload.
	OverloadShed
)

func (p OverloadPolicy) internal() pool.Policy {
	if p == OverloadShed {
		return pool.Shed
	}
	return pool.Block
}

// Pool is the serving front-end: a Sketch plus the worker goroutines
// that drive it, behind a goroutine-safe API. Use it when insertions
// and queries arrive on arbitrary goroutines (HTTP handlers, RPC
// servers, pipeline stages) instead of the one-goroutine-per-Handle
// model the core protocol requires.
//
// Ingestion is two-tier. A goroutine that will insert repeatedly should
// register a Producer handle: its steady-state Insert is wait-free —
// one SPSC ring enqueue per shard, no mutex, no channel operation — so
// insert throughput scales with the number of producers. Ad-hoc callers
// use Pool.Insert, the shared fallback lane: it appends to a per-shard
// buffer under a short critical section. Either way the shard's worker
// drains whole chunks into the delegation filters, amortizing hand-off
// overhead that a channel send per key would pay. Queries are delegated
// to a worker and answered through the protocol's pending array, so
// concurrent hot-key queries benefit from squashing.
//
// Consistency: an insertion becomes visible to queries when its worker
// drains it — normally within microseconds, since workers are woken as
// soon as a buffer goes non-empty — and Quiesce, Snapshot and Close are
// barriers after which every completed insertion is visible. Under the
// hood each worker obeys the paper's cooperative protocol, so delegated
// work keeps flowing even while the pool is otherwise idle.
type Pool struct {
	s *Sketch
	p *pool.Pool
}

// PoolConfig assembles a Pool: the embedded Config sizes the sketch
// (Config.Threads is also the number of workers and ingest shards), and
// the pool fields tune the serving layer. Zero values select defaults.
type PoolConfig struct {
	Config

	// BatchSize caps how many buffered insertions a worker feeds to the
	// sketch per chunk (default 256). Smaller values bound the latency
	// of queries queued behind a drain; larger values amortize better.
	BatchSize int
	// QueueCapacity caps each shard's shared ingest buffer, in
	// insertions (default 4096). A producer that finds its shard full
	// is handled per Policy, so memory stays bounded under overload.
	QueueCapacity int
	// RingCapacity caps each registered Producer's per-shard SPSC ring,
	// in insertions (default 1024, rounded up to a power of two). A
	// registered producer that finds its ring full is handled per
	// Policy, exactly like the shared lane. Each registered producer
	// holds Threads × RingCapacity × 16 bytes.
	RingCapacity int
	// Policy selects the full-buffer behavior: OverloadBlock (default)
	// or OverloadShed.
	Policy OverloadPolicy
	// IdleHelp selects idle-worker behavior: 0 (default) busy-polls —
	// lowest latency, one spinning core per idle worker — while a
	// positive duration makes idle workers sleep and help only every
	// IdleHelp (use ~100µs for long-running daemons).
	IdleHelp time.Duration
	// Checkpoint enables crash-safe durability (see CheckpointConfig).
	// The zero value disables it.
	Checkpoint CheckpointConfig

	// ViewInterval is the time-based cadence at which each worker
	// publishes a snapshot view for the bounded-staleness read path
	// (default 100ms); it also bounds ViewStaleness.Age under load.
	// See QueryStale.
	ViewInterval time.Duration
	// ViewEvery adds a count-based publish trigger: a worker also
	// republishes after feeding this many insertions since its last
	// view (0, the default, publishes on ViewInterval alone). Lower
	// values tighten ViewStaleness.LagInserts at the cost of more
	// frequent sketch clones.
	ViewEvery int
	// DisableViews turns the view publication machinery off entirely;
	// the stale read methods then always fall back to the exact
	// delegated path.
	DisableViews bool
}

// Validate reports the first problem with cfg, or nil. Zero values are
// always valid (they select the documented defaults).
func (cfg PoolConfig) Validate() error {
	if err := cfg.Config.Validate(); err != nil {
		return err
	}
	switch {
	case cfg.BatchSize < 0:
		return fmt.Errorf("dsketch: BatchSize must be >= 0 (0 selects the default), got %d", cfg.BatchSize)
	case cfg.QueueCapacity < 0:
		return fmt.Errorf("dsketch: QueueCapacity must be >= 0 (0 selects the default), got %d", cfg.QueueCapacity)
	case cfg.RingCapacity < 0:
		return fmt.Errorf("dsketch: RingCapacity must be >= 0 (0 selects the default), got %d", cfg.RingCapacity)
	case cfg.Policy != OverloadBlock && cfg.Policy != OverloadShed:
		return fmt.Errorf("dsketch: unknown OverloadPolicy %d", cfg.Policy)
	case cfg.IdleHelp < 0:
		return fmt.Errorf("dsketch: IdleHelp must be >= 0 (0 busy-polls), got %v", cfg.IdleHelp)
	case cfg.ViewInterval < 0:
		return fmt.Errorf("dsketch: ViewInterval must be >= 0 (0 selects the default), got %v", cfg.ViewInterval)
	case cfg.ViewEvery < 0:
		return fmt.Errorf("dsketch: ViewEvery must be >= 0 (0 disables the count trigger), got %d", cfg.ViewEvery)
	}
	if err := cfg.Checkpoint.validate(); err != nil {
		return err
	}
	if cfg.Checkpoint.Dir != "" && cfg.Backend == BackendCountSketch {
		return fmt.Errorf("dsketch: checkpointing is not supported with BackendCountSketch (signed counters are not Count-Min-representable)")
	}
	return nil
}

// NewPoolChecked validates cfg, then builds the Sketch described by
// cfg.Config and starts cfg.Threads worker goroutines over it. Call
// Close (or Drain) to release them.
func NewPoolChecked(cfg PoolConfig) (*Pool, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ckpt := cfg.Checkpoint.withDefaults()
	s := New(cfg.Config)
	return &Pool{
		s: s,
		p: pool.New(s.ds, pool.Options{
			BatchSize:     cfg.BatchSize,
			QueueCapacity: cfg.QueueCapacity,
			RingCapacity:  cfg.RingCapacity,
			Policy:        cfg.Policy.internal(),
			IdleHelp:      cfg.IdleHelp,
			ViewInterval:  cfg.ViewInterval,
			ViewEvery:     cfg.ViewEvery,
			DisableViews:  cfg.DisableViews,
			Checkpoint: pool.CheckpointOptions{
				Dir:      ckpt.Dir,
				Interval: ckpt.Interval,
				Keep:     ckpt.Keep,
			},
		}),
	}, nil
}

// NewPool is NewPoolChecked for callers that treat a bad configuration
// as a programming error: it panics with the validation message instead
// of returning it.
func NewPool(cfg PoolConfig) *Pool {
	p, err := NewPoolChecked(cfg)
	if err != nil {
		panic(err.Error())
	}
	return p
}

// Threads returns the number of workers (= sketch threads = shards).
func (p *Pool) Threads() int { return p.p.Threads() }

// Insert records one occurrence of key. Goroutine-safe.
func (p *Pool) Insert(key uint64) { p.p.Insert(key) }

// InsertCount records count occurrences of key (a zero count is a
// no-op). Goroutine-safe.
func (p *Pool) InsertCount(key uint64, count uint64) { p.p.InsertCount(key, count) }

// InsertString records one occurrence of a string key (fingerprinted to
// 64 bits; use the same form consistently for inserts and queries).
func (p *Pool) InsertString(key string) { p.p.Insert(hash.FingerprintString(key)) }

// InsertCtx records one occurrence of key, bounding any OverloadBlock
// backoff by ctx. It returns nil on acceptance, ctx.Err() if the wait
// was cut short, ErrOverloaded if OverloadShed refused it, or ErrClosed
// if the pool is closed — in every non-nil case the insertion had no
// effect and is counted in PoolMetrics (Rejected or Dropped).
func (p *Pool) InsertCtx(ctx context.Context, key uint64) error {
	return p.p.InsertCtx(ctx, key)
}

// InsertCountCtx is InsertCtx for count occurrences (a zero count is a
// no-op).
func (p *Pool) InsertCountCtx(ctx context.Context, key, count uint64) error {
	return p.p.InsertCountCtx(ctx, key, count)
}

// Producer is a registered ingestion handle bound to one goroutine: it
// owns a wait-free SPSC ring per shard, so its steady-state Insert does
// no locking at all. Obtain one per long-lived ingesting goroutine via
// Pool.Producer, and Close it when the goroutine is done so the pool
// can reclaim the rings.
//
// A Producer is NOT goroutine-safe: at most one goroutine may use it at
// a time (handing the whole handle off between goroutines is fine).
// Goroutines that cannot hold a handle use the Pool's own Insert
// methods, which share a per-shard mutex-guarded lane. Both paths give
// the same guarantees: bounded buffering per Policy, exact accounting
// in PoolMetrics, and no accepted insertion lost across Drain/Close.
type Producer struct {
	pr *pool.Producer
}

// Producer registers and returns a new ingestion handle (see Producer).
// Registration itself takes a lock; the handle's inserts do not.
func (p *Pool) Producer() *Producer { return &Producer{pr: p.p.Producer()} }

// Insert records one occurrence of key through the wait-free lane.
func (pr *Producer) Insert(key uint64) { pr.pr.Insert(key) }

// InsertCount records count occurrences of key (a zero count is a
// no-op).
func (pr *Producer) InsertCount(key, count uint64) { pr.pr.InsertCount(key, count) }

// InsertString records one occurrence of a string key (fingerprinted to
// 64 bits; use the same form consistently for inserts and queries).
func (pr *Producer) InsertString(key string) { pr.pr.Insert(hash.FingerprintString(key)) }

// InsertCtx records one occurrence of key, bounding any OverloadBlock
// backoff by ctx. Same error contract as Pool.InsertCtx.
func (pr *Producer) InsertCtx(ctx context.Context, key uint64) error {
	return pr.pr.InsertCtx(ctx, key)
}

// InsertCountCtx is InsertCtx for count occurrences (a zero count is a
// no-op).
func (pr *Producer) InsertCountCtx(ctx context.Context, key, count uint64) error {
	return pr.pr.InsertCountCtx(ctx, key, count)
}

// Close retires the handle: later inserts refuse with ErrClosed, the
// pool drains and reclaims its rings, and every previously accepted
// insertion remains exactly counted. Idempotent; call it from the
// handle's owning goroutine.
func (pr *Producer) Close() { pr.pr.Close() }

// Query estimates key's frequency. Goroutine-safe; see Pool's
// consistency note.
func (p *Pool) Query(key uint64) uint64 { return p.p.Query(key) }

// QueryString estimates a string key's frequency.
func (p *Pool) QueryString(key string) uint64 {
	return p.p.Query(hash.FingerprintString(key))
}

// QueryBatch estimates each key's frequency in one round trip to a
// worker: the per-request hand-off is paid once for the whole batch,
// and results come back positionally.
func (p *Pool) QueryBatch(keys []uint64) []uint64 {
	return p.p.QueryBatch(keys, nil)
}

// QueryCtx estimates key's frequency, abandoning the wait when ctx is
// done (the result is then 0 and the error ctx.Err()).
func (p *Pool) QueryCtx(ctx context.Context, key uint64) (uint64, error) {
	return p.p.QueryCtx(ctx, key)
}

// QueryBatchCtx is QueryBatch with a deadline: the wait is abandoned
// when ctx is done (the result slice is then nil).
func (p *Pool) QueryBatchCtx(ctx context.Context, keys []uint64) ([]uint64, error) {
	return p.p.QueryBatchCtx(ctx, keys)
}

// Quiesce pauses the pool — every worker parks at a two-phase barrier
// after draining its ingest buffer — runs fn on the quiescent Sketch,
// and resumes. Inside fn every completed insertion is visible and the
// quiescent-only Sketch operations (Flush, HeavyHitters, Query) are
// safe. Insertions and queries issued during the pause are buffered and
// served after resume. Quiesce calls serialize with each other.
func (p *Pool) Quiesce(fn func(s *Sketch)) {
	p.p.Quiesce(func() { fn(p.s) })
}

// PoolSnapshot is a consistent view captured in a single pause.
type PoolSnapshot struct {
	// HeavyHitters holds the top-k report when Config.TrackHeavyHitters
	// is set (nil otherwise).
	HeavyHitters []HeavyHitter
	// Stats are the sketch's cumulative event counters.
	Stats Stats
	// MemoryBytes is the sketch footprint (see Sketch.MemoryBytes).
	MemoryBytes int
	// Metrics are the pool's serving metrics (taken with the same
	// snapshot, though they are safe to read at any time).
	Metrics PoolMetrics
}

// Snapshot flushes the sketch and captures heavy hitters (when tracked),
// stats and metrics in one quiescent pause, then resumes serving. k
// bounds the heavy-hitter report size.
func (p *Pool) Snapshot(k int) PoolSnapshot {
	var snap PoolSnapshot
	p.Quiesce(func(s *Sketch) {
		s.Flush()
		// Empty unless Config.TrackHeavyHitters was set.
		if hh := s.HeavyHitters(k); len(hh) > 0 {
			snap.HeavyHitters = hh
		}
		snap.Stats = s.Stats()
		snap.MemoryBytes = s.MemoryBytes()
	})
	snap.Metrics = p.Metrics()
	return snap
}

// Stats returns the sketch's cumulative event counters. Safe at any
// time (counters are monotone and read atomically).
func (p *Pool) Stats() Stats { return p.s.Stats() }

// MemoryBytes reports the sketch footprint. The pool's own buffers add
// 16 bytes per queued insertion on top, bounded by
// Threads × QueueCapacity.
func (p *Pool) MemoryBytes() int { return p.s.MemoryBytes() }

// PoolMetrics summarizes the serving layer's self-measurements.
type PoolMetrics struct {
	// Inserts is the number of accepted insert operations; Queries the
	// number of query requests (a QueryBatch is one request), QueryKeys
	// the number of individual keys answered.
	Inserts, Queries, QueryKeys uint64
	// Backpressure counts producer backoffs on a full shard buffer.
	Backpressure uint64
	// Dropped counts insertions discarded because the pool was closed or
	// draining; Rejected counts insertions refused while serving (the
	// OverloadShed policy, or an InsertCtx deadline during a backoff).
	// An Insert that neither errored nor appears here is durably in the
	// sketch after a successful Drain.
	Dropped, Rejected uint64
	// QueueDepth is the instantaneous number of buffered insertions
	// across all shards at the moment of the snapshot.
	QueueDepth uint64
	// WorkerPanics counts panics recovered inside worker goroutines;
	// each one restarted the shard's worker (or was contained in place
	// during a barrier), so a non-zero value means the pool survived a
	// fault, not that it is unhealthy now.
	WorkerPanics uint64
	// Quiesces counts completed quiescent pauses (incl. Snapshots).
	Quiesces uint64
	// Batches counts chunks drained into the sketch; BatchMean/BatchMax
	// describe the chunk sizes, and DepthMean/DepthMax the shard buffer
	// length each drain encountered.
	Batches   uint64
	BatchMean float64
	BatchMax  uint64
	DepthMean float64
	DepthMax  uint64
	// EnqueueP50/P99/Max describe the producer-side cost of handing an
	// insertion to the pool (sampled 1 in 32).
	EnqueueP50, EnqueueP99, EnqueueMax time.Duration
	// PauseMean/PauseMax describe full Quiesce pauses (barrier + fn).
	PauseMean, PauseMax time.Duration
	// ViewsPublished counts snapshot views published by workers;
	// StaleQueries counts bounded-staleness read operations answered
	// from views, and StaleFallbacks those that fell back to the exact
	// delegated path (no view available, or views disabled).
	ViewsPublished, StaleQueries, StaleFallbacks uint64
	// ViewAgeP50/P99/Max describe the wall-clock age of the views
	// consulted by stale reads, at the moment each read consulted them.
	ViewAgeP50, ViewAgeP99, ViewAgeMax time.Duration
	// Checkpoints counts successful checkpoint publishes;
	// CheckpointFailures counts attempts that failed (capture, write, or
	// read-back verification). Zero everywhere unless checkpointing is
	// configured or Checkpoint was called.
	Checkpoints, CheckpointFailures uint64
	// LastCheckpointGen/Bytes/At/Duration describe the most recent
	// successful checkpoint (zero values if none yet).
	LastCheckpointGen      uint64
	LastCheckpointBytes    uint64
	LastCheckpointAt       time.Time
	LastCheckpointDuration time.Duration
}

// Metrics returns a snapshot of the pool's serving metrics.
func (p *Pool) Metrics() PoolMetrics {
	m := p.p.Metrics()
	cm := p.p.CheckpointMetrics()
	return PoolMetrics{
		Checkpoints:            cm.Checkpoints,
		CheckpointFailures:     cm.Failures,
		LastCheckpointGen:      cm.LastGen,
		LastCheckpointBytes:    cm.LastBytes,
		LastCheckpointAt:       cm.LastAt,
		LastCheckpointDuration: cm.LastDuration,
		Inserts:                m.Inserts,
		Queries:                m.Queries,
		QueryKeys:              m.QueryKeys,
		Backpressure:           m.Backpressure,
		Dropped:                m.Dropped,
		Rejected:               m.Rejected,
		QueueDepth:             m.QueueDepth,
		WorkerPanics:           m.WorkerPanics,
		Quiesces:               m.Quiesces,
		Batches:                m.Batches.Count(),
		BatchMean:              m.Batches.MeanValue(),
		BatchMax:               m.Batches.MaxValue(),
		DepthMean:              m.Depths.MeanValue(),
		DepthMax:               m.Depths.MaxValue(),
		EnqueueP50:             m.Enqueue.Percentile(50),
		EnqueueP99:             m.Enqueue.Percentile(99),
		EnqueueMax:             m.Enqueue.Max(),
		PauseMean:              m.Pauses.Mean(),
		PauseMax:               m.Pauses.Max(),
		ViewsPublished:         m.ViewsPublished,
		StaleQueries:           m.StaleQueries,
		StaleFallbacks:         m.StaleFallbacks,
		ViewAgeP50:             m.ViewAge.Percentile(50),
		ViewAgeP99:             m.ViewAge.Percentile(99),
		ViewAgeMax:             m.ViewAge.Max(),
	}
}

// Drain gracefully shuts the pool down, bounded by ctx: it stops
// accepting insertions, waits for the workers to drain every accepted
// insertion into the sketch and exit, answers still-queued queries, and
// flushes the delegation filters, leaving the sketch quiescent. When
// Drain returns nil, every insertion whose Insert/InsertCtx call
// succeeded is visible to Query.
//
// If ctx expires first, Drain returns ctx.Err() and shutdown continues
// in the background (a later Drain or Close waits for it again). Drain
// is idempotent and safe to race with in-flight Insert and Query calls:
// a racing Insert either lands before the final sweep or fails with
// ErrClosed and is counted in PoolMetrics.Dropped — never silently
// lost.
func (p *Pool) Drain(ctx context.Context) error { return p.p.Drain(ctx) }

// Close is Drain without a deadline: it blocks until every buffered
// insertion is drained and the delegation filters flushed, leaving the
// sketch quiescent. Query and QueryBatch keep working afterwards
// (answered directly), and Sketch() may be used for quiescent-only
// reporting. Idempotent; safe to race with in-flight Insert and Query.
func (p *Pool) Close() { p.p.Close() }

// Sketch returns the underlying Sketch. Its quiescent-only operations
// (Flush, HeavyHitters, Sketch.Query) are safe only inside Quiesce or
// after Close; Stats and MemoryBytes are safe at any time.
//
// This is the strictest of the pool's three freshness tiers, in
// decreasing strength and cost:
//
//  1. Quiesce/Snapshot (and Sketch inside them): a global pause — every
//     worker parks, every completed insertion is visible, the Sketch's
//     quiescent-only operations are safe.
//  2. Query/QueryBatch: the exact delegated path — no pause, answers
//     reflect everything the owner has drained (normally microseconds
//     behind), served through the cooperative protocol.
//  3. QueryStale/HeavyHittersStale/StatsView: published snapshot views —
//     no pause, no worker involvement at all, answers carry an explicit
//     staleness watermark (see ViewStaleness).
func (p *Pool) Sketch() *Sketch { return p.s }
