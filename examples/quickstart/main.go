// Quickstart: build a Delegation Sketch shared by four threads, insert a
// skewed stream concurrently, and answer point queries while insertions
// are still running — the concurrent-operations scenario the paper is
// designed for.
package main

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"dsketch"
	"dsketch/internal/zipf"
)

func main() {
	const threads = 4
	s := dsketch.New(dsketch.Config{
		Threads: threads,
		// Size each owner's sketch for f̂ ≤ f + 0.001·N with 99.9%
		// confidence.
		Epsilon: 0.001,
		Delta:   0.001,
	})
	fmt.Printf("sketch: %d threads, %d bytes total\n", s.Threads(), s.MemoryBytes())

	universe := zipf.NewSharedUniverse(zipf.Config{Universe: 100_000, Skew: 1.2, PermuteKeys: true, PermSeed: 99})
	hot := universe.Generator(0).KeyForRank(0)

	var done atomic.Int32
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		h := s.Handle(tid)
		g := universe.Generator(uint64(tid) + 1)
		wg.Add(1)
		go func(h *dsketch.Handle, g *zipf.Generator) {
			defer wg.Done()
			for i := 0; i < 200_000; i++ {
				h.Insert(g.Next())
				// A concurrent query every 50k insertions: served while
				// the other threads keep inserting.
				if i%50_000 == 25_000 && h.Thread() == 0 {
					fmt.Printf("  live query: hot key seen %d times so far\n", h.Query(hot))
				}
			}
			// Keep serving delegated work until everyone is finished.
			done.Add(1)
			for int(done.Load()) < threads {
				h.Help()
				runtime.Gosched()
			}
		}(h, g)
	}
	wg.Wait()

	// Workers have exited: use the quiescent query path for reporting.
	fmt.Printf("final: hot key %d has estimated frequency %d (stream total %d)\n",
		hot, s.Query(hot), threads*200_000)
	st := s.Stats()
	fmt.Printf("stats: %d filter drains, %d delegated queries (%d squashed)\n",
		st.Drains, st.ServedQueries, st.Squashed)
}
