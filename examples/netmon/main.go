// netmon is the paper's motivating application (§1): network traffic
// monitoring at the ingress of a large network. Producer goroutines
// ingest per-CPU packet sub-streams (as a NIC's receive-side scaling
// would deliver them) while a monitoring goroutine concurrently asks
// "how many packets has this source sent?" — the insert-heavy,
// query-at-any-time workload that breaks the thread-local and
// single-shared baselines.
//
// The producers and the monitor are ordinary goroutines: dsketch.Pool
// owns the sketch's worker threads and the cooperative delegation
// protocol underneath, so nobody here touches a Handle, helps, or
// hand-rolls a quiescence barrier.
//
// The packet stream is the repository's CAIDA-like synthetic IP trace
// (the real CAIDA trace is proprietary; DESIGN.md §5).
package main

import (
	"fmt"
	"sync"

	"dsketch"
	"dsketch/internal/count"
	"dsketch/internal/stream"
	"dsketch/internal/topk"
	"dsketch/internal/trace"
)

func ipString(k uint64) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(k>>24), byte(k>>16), byte(k>>8), byte(k))
}

func main() {
	const (
		producers = 6 // ingest goroutines (e.g. one per NIC queue)
		threads   = 4 // sketch worker threads owned by the pool
		packets   = 2_000_000
	)

	fmt.Printf("generating %d-packet CAIDA-like IP trace...\n", packets)
	pkts := trace.SyntheticIPs(packets, 2024)
	subs := stream.Split(pkts, producers)

	// Ground truth for the final accuracy report.
	truth := count.NewExact()
	hh := topk.New(64)
	for _, k := range pkts {
		truth.Add(k, 1)
		hh.Observe(k, 1)
	}
	suspects := hh.Top(5)
	suspectKeys := make([]uint64, len(suspects))
	for i, e := range suspects {
		suspectKeys[i] = e.Key
	}

	p := dsketch.NewPool(dsketch.PoolConfig{
		Config: dsketch.Config{Threads: threads, Width: 8192, Depth: 8},
	})

	var wg sync.WaitGroup
	done := make(chan struct{})

	// Ingest producers: arbitrary goroutines feeding the pool.
	for i := 0; i < producers; i++ {
		sub := subs[i]
		wg.Add(1)
		go func(sub []uint64) {
			defer wg.Done()
			for _, k := range sub {
				p.Insert(k)
			}
		}(sub)
	}

	// Monitor: polls the heaviest sources while ingestion runs, e.g. to
	// feed a DoS detector or an SDN flow scheduler. One QueryBatch per
	// round answers all suspects in a single worker pass.
	monitored := make(chan struct{})
	go func() {
		defer close(monitored)
		for round := 1; ; round++ {
			select {
			case <-done:
				return
			default:
			}
			counts := p.QueryBatch(suspectKeys)
			var busiest, busiestKey uint64
			for i, c := range counts {
				if c > busiest {
					busiest, busiestKey = c, suspectKeys[i]
				}
			}
			if round%2000 == 0 {
				fmt.Printf("  monitor: busiest source so far %s with ~%d packets\n",
					ipString(busiestKey), busiest)
			}
		}
	}()

	wg.Wait()
	close(done)
	<-monitored
	p.Close() // drain buffers, flush filters: the sketch is quiescent

	// Final report through the quiescent sketch.
	fmt.Println("\ntop talkers (sketch estimate vs exact):")
	for i, e := range suspects {
		est := p.Query(e.Key)
		exact := truth.Count(e.Key)
		fmt.Printf("%2d. %-15s estimate %-8d exact %-8d overestimate %d\n",
			i+1, ipString(e.Key), est, exact, est-exact)
	}
	st := p.Stats()
	m := p.Metrics()
	fmt.Printf("\n%d packets from %d producers through %d workers; %d drains, %d delegated queries (%d squashed)\n",
		packets, producers, p.Threads(), st.Drains, st.ServedQueries, st.Squashed)
	fmt.Printf("pool: %d batches (mean %.0f keys), enqueue p99 %v, backpressure %d\n",
		m.Batches, m.BatchMean, m.EnqueueP99, m.Backpressure)
}
