// netmon is the paper's motivating application (§1): network traffic
// monitoring at the ingress of a large network. Worker threads ingest
// per-CPU packet sub-streams (as a NIC's receive-side scaling would
// deliver them) while a monitoring thread concurrently asks "how many
// packets has this source sent?" — the insert-heavy, query-at-any-time
// workload that breaks the thread-local and single-shared baselines.
//
// The packet stream is the repository's CAIDA-like synthetic IP trace
// (the real CAIDA trace is proprietary; DESIGN.md §5).
package main

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"dsketch"
	"dsketch/internal/count"
	"dsketch/internal/stream"
	"dsketch/internal/topk"
	"dsketch/internal/trace"
)

func ipString(k uint64) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(k>>24), byte(k>>16), byte(k>>8), byte(k))
}

func main() {
	const (
		workers = 6 // ingest threads; thread id workers..: monitor
		threads = workers + 1
		packets = 2_000_000
	)

	fmt.Printf("generating %d-packet CAIDA-like IP trace...\n", packets)
	pkts := trace.SyntheticIPs(packets, 2024)
	subs := stream.Split(pkts, workers)

	// Ground truth for the final accuracy report.
	truth := count.NewExact()
	hh := topk.New(64)
	for _, k := range pkts {
		truth.Add(k, 1)
		hh.Observe(k, 1)
	}
	suspects := hh.Top(5)

	s := dsketch.New(dsketch.Config{Threads: threads, Width: 8192, Depth: 8})
	var done atomic.Int32
	var wg sync.WaitGroup

	// Ingest workers.
	for tid := 0; tid < workers; tid++ {
		h := s.Handle(tid)
		sub := subs[tid]
		wg.Add(1)
		go func(h *dsketch.Handle, sub []uint64) {
			defer wg.Done()
			for _, k := range sub {
				h.Insert(k)
			}
			done.Add(1)
			for int(done.Load()) < threads {
				h.Help()
				runtime.Gosched()
			}
		}(h, sub)
	}

	// Monitor: polls the heaviest sources while ingestion runs, e.g. to
	// feed a DoS detector or an SDN flow scheduler.
	wg.Add(1)
	go func() {
		defer wg.Done()
		h := s.Handle(workers)
		for round := 1; int(done.Load()) < workers; round++ {
			var busiest uint64
			var busiestKey uint64
			for _, e := range suspects {
				if c := h.Query(e.Key); c > busiest {
					busiest, busiestKey = c, e.Key
				}
			}
			if round%2000 == 0 {
				fmt.Printf("  monitor: busiest source so far %s with ~%d packets\n",
					ipString(busiestKey), busiest)
			}
			h.Help()
			runtime.Gosched()
		}
		done.Add(1)
		for int(done.Load()) < threads {
			h.Help()
			runtime.Gosched()
		}
	}()
	wg.Wait()

	// Final report (workers exited: quiescent queries).
	fmt.Println("\ntop talkers (sketch estimate vs exact):")
	for i, e := range suspects {
		est := s.Query(e.Key)
		exact := truth.Count(e.Key)
		fmt.Printf("%2d. %-15s estimate %-8d exact %-8d overestimate %d\n",
			i+1, ipString(e.Key), est, exact, est-exact)
	}
	st := s.Stats()
	fmt.Printf("\n%d packets ingested by %d workers; %d drains, %d delegated queries (%d squashed)\n",
		packets, workers, st.Drains, st.ServedQueries, st.Squashed)
}
