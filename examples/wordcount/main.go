// wordcount exercises the string-key API on text-like data ("word count
// in a corpus of text" is one of the paper's canonical Zipf-distributed
// workloads, §7.1). A synthetic corpus is sharded across threads; the
// sketch answers word-frequency queries and is compared against exact
// counts, demonstrating the memory/accuracy trade-off.
package main

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"dsketch"
	"dsketch/internal/count"
	"dsketch/internal/zipf"
)

// vocabulary builds a deterministic fake lexicon: rank r maps to a word;
// word frequencies follow Zipf (as natural language does).
func word(rank uint64) string {
	const letters = "etaoinshrdlucmfw"
	if rank == 0 {
		return "the"
	}
	var b []byte
	for v := rank; v > 0; v /= uint64(len(letters)) {
		b = append(b, letters[v%uint64(len(letters))])
	}
	return string(b)
}

func main() {
	const (
		threads   = 4
		perThread = 500_000
		vocab     = 50_000
	)
	s := dsketch.New(dsketch.Config{Threads: threads, Width: 2048, Depth: 8})

	universe := zipf.NewSharedUniverse(zipf.Config{Universe: vocab, Skew: 1.05, PermSeed: 5})
	truths := make([]*count.Exact, threads)

	var done atomic.Int32
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		h := s.Handle(tid)
		g := universe.Generator(uint64(tid) + 11)
		wg.Add(1)
		go func(tid int, h *dsketch.Handle, g *zipf.Generator) {
			defer wg.Done()
			truth := count.NewExact()
			for i := 0; i < perThread; i++ {
				w := word(g.Next())
				h.InsertString(w)
				truth.Add(dsketch.Fingerprint(w), 1)
			}
			truths[tid] = truth
			done.Add(1)
			for int(done.Load()) < threads {
				h.Help()
				runtime.Gosched()
			}
		}(tid, h, g)
	}
	wg.Wait()

	truth := count.NewExact()
	for _, t := range truths {
		truth.Merge(t)
	}

	// Reverse index for display: fingerprint -> word.
	byFingerprint := make(map[uint64]string, vocab)
	for r := uint64(0); r < vocab; r++ {
		w := word(r)
		byFingerprint[dsketch.Fingerprint(w)] = w
	}

	fmt.Printf("corpus: %d words, %d distinct; sketch memory %d bytes (exact counting needs ~%d)\n",
		truth.Total(), truth.Distinct(), s.MemoryBytes(), truth.Distinct()*24)
	fmt.Println("\nmost frequent words (sketch estimate vs exact):")
	for i, kc := range truth.TopK(10) {
		est := s.Query(kc.Key)
		fmt.Printf("%2d. %-10q estimate %-8d exact %-8d\n", i+1, byFingerprint[kc.Key], est, kc.Count)
	}
}
