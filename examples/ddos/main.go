// ddos demonstrates the paper's "unpredictable data" motivation (§1): a
// large-scale denial-of-service attack abruptly changes the traffic
// distribution, and a detector must notice *while ingestion continues at
// full rate* — queries cannot wait for a quiet moment. This is precisely
// the concurrent insert+query regime where Delegation Sketch's query rate
// and latency advantages matter.
//
// Phase 1 is benign low-skew traffic; in phase 2 a botnet floods one
// victim port, spiking the skew. A detector goroutine polls candidate
// ports and raises an alert when one crosses a rate threshold.
//
// Producers and the detector are ordinary goroutines over dsketch.Pool;
// the pool owns the sketch's worker threads and the delegation protocol.
package main

import (
	"fmt"
	"sync"
	"sync/atomic"

	"dsketch"
	"dsketch/internal/trace"
	"dsketch/internal/zipf"
)

func main() {
	const (
		producers  = 6
		threads    = 4
		benignOps  = 400_000    // per producer
		attackOps  = 400_000    // per producer
		victimPort = uint64(53) // DNS amplification target
	)

	p := dsketch.NewPool(dsketch.PoolConfig{
		Config: dsketch.Config{Threads: threads, Width: 4096, Depth: 8},
	})

	var phase atomic.Int32 // 0 benign, 1 attack
	var alerted atomic.Bool
	var wg sync.WaitGroup

	// Ingest producers: benign CAIDA-like ports, then the attack mix
	// where half the packets hit the victim port.
	for i := 0; i < producers; i++ {
		benign := trace.SyntheticPorts(benignOps, uint64(i)+7)
		attackG := zipf.New(zipf.Config{Universe: 64512, Skew: 0.5, Seed: uint64(i) + 77})
		wg.Add(1)
		go func(benign []uint64, attackG *zipf.Generator) {
			defer wg.Done()
			for _, k := range benign {
				p.Insert(k)
			}
			phase.Store(1)
			for i := 0; i < attackOps; i++ {
				if i%2 == 0 {
					p.Insert(victimPort) // the flood
				} else {
					p.Insert(1024 + attackG.Next())
				}
			}
		}(benign, attackG)
	}

	// Detector: continuously polls a candidate port set (one batched
	// query per round); alert when any port exceeds 20% of the stream.
	done := make(chan struct{})
	detected := make(chan struct{})
	go func() {
		defer close(detected)
		candidates := []uint64{443, 80, 53, 22, 123, 8080}
		total := uint64(producers) * uint64(benignOps+attackOps)
		for {
			select {
			case <-done:
				return
			default:
			}
			for i, c := range p.QueryBatch(candidates) {
				if c > total/5 && !alerted.Load() {
					alerted.Store(true)
					fmt.Printf("ALERT: port %d at %d packets — flood detected during phase %d\n",
						candidates[i], c, phase.Load())
				}
			}
		}
	}()

	wg.Wait()
	close(done)
	<-detected
	p.Close()

	fmt.Printf("\nfinal counts: victim port %d -> %d packets; port 443 -> %d packets\n",
		victimPort, p.Query(victimPort), p.Query(443))
	if alerted.Load() {
		fmt.Println("detector fired while ingestion was live (concurrent queries worked)")
	} else {
		fmt.Println("detector did not fire — unexpected for this workload")
	}
	st := p.Stats()
	m := p.Metrics()
	fmt.Printf("stats: drains=%d served-queries=%d squashed=%d searches=%d delegated-posts=%d\n",
		st.Drains, st.ServedQueries, st.Squashed, st.Searches, st.DelegatedPosts)
	fmt.Printf("pool: %d inserts in %d batches (mean %.0f keys), %d query rounds\n",
		m.Inserts, m.Batches, m.BatchMean, m.Queries)
}
