// ddos demonstrates the paper's "unpredictable data" motivation (§1): a
// large-scale denial-of-service attack abruptly changes the traffic
// distribution, and a detector must notice *while ingestion continues at
// full rate* — queries cannot wait for a quiet moment. This is precisely
// the concurrent insert+query regime where Delegation Sketch's query rate
// and latency advantages matter.
//
// Phase 1 is benign low-skew traffic; in phase 2 a botnet floods one
// victim port, spiking the skew. A detector thread polls candidate ports
// every few microseconds and raises an alert when one crosses a rate
// threshold.
package main

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"dsketch"
	"dsketch/internal/trace"
	"dsketch/internal/zipf"
)

func main() {
	const (
		workers    = 6
		threads    = workers + 1
		benignOps  = 400_000    // per worker
		attackOps  = 400_000    // per worker
		victimPort = uint64(53) // DNS amplification target
	)

	s := dsketch.New(dsketch.Config{Threads: threads, Width: 4096, Depth: 8})

	var phase atomic.Int32 // 0 benign, 1 attack
	var done atomic.Int32
	var alerted atomic.Bool
	var wg sync.WaitGroup

	// Ingest workers: benign CAIDA-like ports, then the attack mix where
	// half the packets hit the victim port.
	for tid := 0; tid < workers; tid++ {
		h := s.Handle(tid)
		benign := trace.SyntheticPorts(benignOps, uint64(tid)+7)
		attackG := zipf.New(zipf.Config{Universe: 64512, Skew: 0.5, Seed: uint64(tid) + 77})
		wg.Add(1)
		go func(h *dsketch.Handle, benign []uint64, attackG *zipf.Generator) {
			defer wg.Done()
			for _, k := range benign {
				h.Insert(k)
			}
			phase.Store(1)
			for i := 0; i < attackOps; i++ {
				if i%2 == 0 {
					h.Insert(victimPort) // the flood
				} else {
					h.Insert(1024 + attackG.Next())
				}
			}
			done.Add(1)
			for int(done.Load()) < threads {
				h.Help()
				runtime.Gosched()
			}
		}(h, benign, attackG)
	}

	// Detector: continuously polls a candidate port set; alert when any
	// port exceeds 20% of a running total estimate.
	wg.Add(1)
	go func() {
		defer wg.Done()
		h := s.Handle(workers)
		candidates := []uint64{443, 80, 53, 22, 123, 8080}
		var inserted uint64
		for int(done.Load()) < workers {
			inserted += 1 // cheap pacing; real detectors track link rate
			for _, p := range candidates {
				c := h.Query(p)
				total := uint64(workers) * uint64(benignOps+attackOps)
				if c > total/5 && !alerted.Load() {
					alerted.Store(true)
					fmt.Printf("ALERT: port %d at %d packets — flood detected during phase %d\n",
						p, c, phase.Load())
				}
			}
			h.Help()
			runtime.Gosched()
		}
		done.Add(1)
		for int(done.Load()) < threads {
			h.Help()
			runtime.Gosched()
		}
	}()
	wg.Wait()

	fmt.Printf("\nfinal counts: victim port %d -> %d packets; port 443 -> %d packets\n",
		victimPort, s.Query(victimPort), s.Query(443))
	if alerted.Load() {
		fmt.Println("detector fired while ingestion was live (concurrent queries worked)")
	} else {
		fmt.Println("detector did not fire — unexpected for this workload")
	}
	st := s.Stats()
	fmt.Printf("stats: drains=%d served-queries=%d squashed=%d\n",
		st.Drains, st.ServedQueries, st.Squashed)
}
